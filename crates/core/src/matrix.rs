use serde::{Deserialize, Serialize};

/// A dense row-major `sites × objects` matrix.
///
/// Used for the read and write frequency tables `r_k(i)` / `w_k(i)`. Rows
/// are sites, columns are objects, matching the paper's chromosome layout
/// (one *gene* — one row — per site).
///
/// # Examples
///
/// ```
/// use drp_core::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 7u64);
/// assert_eq!(m.get(1, 2), &7);
/// assert_eq!(m.row(1), &[0, 0, 7]);
/// assert_eq!(m.column(2).copied().collect::<Vec<_>>(), vec![0, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> DenseMatrix<T> {
    /// Creates a matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T> DenseMatrix<T> {
    /// Builds a matrix from row-major data.
    ///
    /// Returns `None` when `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<T>) -> Option<Self> {
        (data.len() == rows * cols).then_some(Self { rows, cols, data })
    }

    /// Number of rows (sites).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (objects).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        assert!(row < self.rows && col < self.cols, "index out of range");
        &self.data[row * self.cols + col]
    }

    /// Overwrites the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        assert!(row < self.rows && col < self.cols, "index out of range");
        &mut self.data[row * self.cols + col]
    }

    /// A full row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over one column, top to bottom.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> impl Iterator<Item = &T> + '_ {
        assert!(col < self.cols, "column out of range");
        (0..self.rows).map(move |r| &self.data[r * self.cols + col])
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.data.iter()
    }

    /// The backing row-major storage as one slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The backing row-major storage as one mutable slice.
    ///
    /// Rows occupy disjoint `cols`-sized runs, so callers can
    /// `split_at_mut` the slice at row boundaries and hand each piece to a
    /// different worker — the ingestion shards fill their observed-traffic
    /// rows this way without locking.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl DenseMatrix<u64> {
    /// Sum of one column — e.g. the total reads of an object across sites.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column_sum(&self, col: usize) -> u64 {
        self.column(col).sum()
    }

    /// Sum of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_sum(&self, row: usize) -> u64 {
        self.row(row).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert!(DenseMatrix::from_rows(2, 2, vec![1u64, 2, 3]).is_none());
        let m = DenseMatrix::from_rows(2, 2, vec![1u64, 2, 3, 4]).unwrap();
        assert_eq!(m.get(0, 1), &2);
        assert_eq!(m.get(1, 0), &3);
    }

    #[test]
    fn sums() {
        let m = DenseMatrix::from_rows(2, 3, vec![1u64, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m.row_sum(1), 15);
        assert_eq!(m.column_sum(2), 9);
    }

    #[test]
    fn set_and_mutate() {
        let mut m = DenseMatrix::zeros(2, 2);
        *m.get_mut(0, 0) += 5u64;
        m.set(1, 1, 9);
        assert_eq!(m.iter().copied().collect::<Vec<_>>(), vec![5, 0, 0, 9]);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn out_of_range_panics() {
        let m: DenseMatrix<u64> = DenseMatrix::zeros(1, 1);
        m.get(1, 0);
    }

    #[test]
    fn empty_matrix_is_usable() {
        let m: DenseMatrix<u64> = DenseMatrix::zeros(0, 5);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.iter().count(), 0);
    }
}
