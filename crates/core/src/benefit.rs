//! The greedy benefit value (Eq. 5) and the adaptive deallocation estimator
//! (Eq. 6), implemented as methods on [`Problem`].

use crate::{ObjectId, Problem, ReplicationScheme, SiteId};

impl Problem {
    /// The replication benefit `B_k(i)` of Eq. 5: the *local* NTC saved per
    /// storage unit if `site` replicated `object`.
    ///
    /// It is the read cost that replication would eliminate minus the update
    /// traffic the new replica would attract, normalized by object size.
    /// Because every NTC term scales with `o_k`, the size cancels and the
    /// value is the exact integer
    ///
    /// ```text
    /// B_k(i) = r_k(i)·C(i, SN_k(i)) + (w_k(i) − Σ_x w_k(x))·C(i, SP_k)
    /// ```
    ///
    /// Negative values mean replication is inefficient from the site's local
    /// view (the paper notes it could still help globally — see
    /// [`delta_add_replica`](Problem::delta_add_replica) for the global
    /// delta).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range. A site that already replicates the
    /// object gets `SN = self`, so its benefit is the (non-positive) update
    /// burden alone.
    pub fn local_benefit(&self, scheme: &ReplicationScheme, site: SiteId, object: ObjectId) -> i64 {
        let (_, nearest_cost) = scheme.nearest_replica(self, site, object);
        let c_sp = self
            .costs()
            .cost(site.index(), self.primary(object).index());
        let r = self.reads(site, object) as i64;
        let w = self.writes(site, object) as i64;
        let w_tot = self.total_writes(object) as i64;
        r * nearest_cost as i64 + (w - w_tot) * c_sp as i64
    }

    /// The replica value estimate `E_k(i)` of Eq. 6 — AGRA's O(M) proxy for
    /// how much a replica at `site` is worth. During transcription repair
    /// the object with the *lowest* estimate at an over-capacity site is
    /// deallocated first.
    ///
    /// ```text
    ///          Σ_x r_k(x) + w_k(i) − Σ_x w_k(x) + r_k(i)·s(i) / o_k
    /// E_k(i) = ----------------------------------------------------
    ///          [ Σ_x C(i,x) / (Σ_l Σ_x C(l,x) / M) ] · Σ_x X_xk
    /// ```
    ///
    /// Intuition: widely-replicated, update-heavy objects score low (good
    /// deallocation victims); objects with strong local read demand relative
    /// to their size score high, and the site's "proportional link weight"
    /// discounts sites that are poor nearest-neighbour candidates.
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range.
    pub fn replica_value_estimate(
        &self,
        scheme: &ReplicationScheme,
        site: SiteId,
        object: ObjectId,
    ) -> f64 {
        self.replica_value_estimate_with_degree(site, object, scheme.replica_degree(object))
    }

    /// [`replica_value_estimate`](Self::replica_value_estimate) with the
    /// replica degree supplied explicitly — the fast path for callers that
    /// track degrees incrementally (AGRA's transcription repair works on raw
    /// chromosomes rather than [`ReplicationScheme`]s).
    ///
    /// # Panics
    ///
    /// Panics if ids are out of range or `degree == 0`.
    pub fn replica_value_estimate_with_degree(
        &self,
        site: SiteId,
        object: ObjectId,
        degree: usize,
    ) -> f64 {
        assert!(degree > 0, "every object has at least its primary copy");
        let r_total = self.total_reads(object) as f64;
        let w_total = self.total_writes(object) as f64;
        let r_local = self.reads(site, object) as f64;
        let w_local = self.writes(site, object) as f64;
        let capacity = self.capacity(site) as f64;
        let size = self.object_size(object) as f64;

        let numerator = r_total + w_local - w_total + r_local * capacity / size;

        let mean_row = self.costs().mean_row_sum();
        let weight = if mean_row > 0.0 {
            self.costs().row_sum(site.index()) as f64 / mean_row
        } else {
            1.0 // degenerate single-site network
        };
        numerator / (weight.max(f64::MIN_POSITIVE) * degree as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    fn problem() -> Problem {
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![40, 40, 40])
            .object(10, SiteId::new(0))
            .reads(vec![0, 4, 6])
            .writes(vec![1, 2, 0])
            .object(5, SiteId::new(2))
            .reads(vec![3, 0, 2])
            .writes(vec![0, 0, 1])
            .build()
            .unwrap()
    }

    #[test]
    fn benefit_matches_hand_computation() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        // Site 2, object 0: r=6, SN=SP=0, C(2,0)=2, w=0, W_tot=3.
        // B = 6·2 + (0 − 3)·2 = 6.
        assert_eq!(p.local_benefit(&s, SiteId::new(2), ObjectId::new(0)), 6);
        // Site 1, object 0: r=4, C(1,0)=1, w=2, W_tot=3. B = 4 + (2−3)·1 = 3.
        assert_eq!(p.local_benefit(&s, SiteId::new(1), ObjectId::new(0)), 3);
    }

    #[test]
    fn benefit_is_local_delta_per_unit() {
        // For every non-replicator pair, B must equal the site-local part of
        // −delta_add / o (the global delta additionally includes other
        // sites' read improvements, so B ≥ −delta/o in general).
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        for k in p.objects() {
            for i in p.sites() {
                if s.holds(i, k) {
                    continue;
                }
                let b = p.local_benefit(&s, i, k);
                let global = -p.delta_add_replica(&s, i, k) as f64 / p.object_size(k) as f64;
                assert!(
                    (b as f64) <= global + 1e-9,
                    "local benefit must not exceed the global saving"
                );
            }
        }
    }

    #[test]
    fn benefit_negative_when_updates_dominate() {
        let costs = CostMatrix::from_rows(2, vec![0, 3, 3, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![20, 20])
            .object(4, SiteId::new(0))
            .reads(vec![0, 1])
            .writes(vec![9, 0])
            .build()
            .unwrap();
        let s = ReplicationScheme::primary_only(&p);
        // B(site 1) = 1·3 + (0 − 9)·3 = −24.
        assert_eq!(p.local_benefit(&s, SiteId::new(1), ObjectId::new(0)), -24);
    }

    #[test]
    fn benefit_for_replicator_is_update_burden() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        // Site 2 now holds it: SN = self (cost 0), so B = (w − W_tot)·C = −6.
        assert_eq!(p.local_benefit(&s, SiteId::new(2), ObjectId::new(0)), -6);
    }

    #[test]
    fn estimate_penalizes_replica_degree() {
        let p = problem();
        let mut s = ReplicationScheme::primary_only(&p);
        let e1 = p.replica_value_estimate(&s, SiteId::new(0), ObjectId::new(0));
        s.add_replica(&p, SiteId::new(2), ObjectId::new(0)).unwrap();
        let e2 = p.replica_value_estimate(&s, SiteId::new(0), ObjectId::new(0));
        assert!(e2 < e1, "a second replica halves the estimate");
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_rewards_local_reads() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        // Same object viewed from heavy-reader site 2 vs idle site 0:
        let hot = p.replica_value_estimate(&s, SiteId::new(2), ObjectId::new(0));
        let cold = p.replica_value_estimate(&s, SiteId::new(0), ObjectId::new(0));
        // Site 2 reads 6× object 0 (r·s/o = 6·40/10 = 24 extra), site 0 zero —
        // even though site 2's link weight is worse, the local reads win here.
        assert!(hot > cold);
    }

    #[test]
    fn estimate_matches_hand_computation() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        // Site 1, object 0: r_tot=10, w_loc=2, w_tot=3, r_loc=4, s=40, o=10.
        // numerator = 10 + 2 − 3 + 16 = 25.
        // row sums: site0=3, site1=2, site2=3 → mean = 8/3.
        // weight(site1) = 2 / (8/3) = 0.75; degree = 1.
        let e = p.replica_value_estimate(&s, SiteId::new(1), ObjectId::new(0));
        assert!((e - 25.0 / 0.75).abs() < 1e-9);
    }
}
