//! Property-based tests that the [`NarrowMirror`] u32 fast path stays
//! *bit-identical* to the wide u64 cost path at large magnitudes — the
//! regime where a missing widening cast would silently wrap. Each profile
//! pushes a different table to the top of the u32 range (costs,
//! frequencies, or object sizes) while keeping the `Problem::build`
//! overflow guard satisfied, then compares Eq. 4 per-object costs over
//! random replica subsets.

use drp_core::{NarrowMirror, ObjectId, Problem, SiteId};
use drp_net::CostMatrix;
use proptest::prelude::*;

/// Builds a line-metric instance (`C(i, j) = |i - j| · step`) with the
/// requested magnitudes. All values stay `<= u32::MAX` so the narrow
/// mirror is eligible, while their Eq. 4 products exceed `u32::MAX` by
/// orders of magnitude.
fn instance(m: usize, step: u64, sizes: &[u64], rw: &[u64]) -> Problem {
    let rows: Vec<u64> = (0..m)
        .flat_map(|i| (0..m).map(move |j| (i as u64).abs_diff(j as u64) * step))
        .collect();
    let costs = CostMatrix::from_rows(m, rows).unwrap();
    let mut builder = Problem::builder(costs);
    builder.capacities(vec![u64::MAX / 4; m]);
    let n = sizes.len();
    builder.objects_bulk(sizes.to_vec(), (0..n).map(|k| SiteId::new(k % m)).collect());
    let mut reads = drp_core::DenseMatrix::zeros(m, n);
    let mut writes = drp_core::DenseMatrix::zeros(m, n);
    for (slot, &v) in rw.iter().take(m * n).enumerate() {
        let (i, k) = (slot / n, slot % n);
        if slot % 2 == 0 {
            reads.set(i, k, v);
        } else {
            writes.set(i, k, v);
        }
    }
    builder.read_matrix(reads);
    builder.write_matrix(writes);
    builder.build().unwrap()
}

/// Decodes a replica-set bitmask into the sorted list the cost paths
/// expect, forcing the primary in.
fn replica_list(mask: u32, m: usize, primary: usize) -> Vec<usize> {
    (0..m)
        .filter(|&i| i == primary || mask & (1 << i) != 0)
        .collect()
}

fn assert_paths_agree(problem: &Problem, masks: &[u32]) {
    let mirror = NarrowMirror::build(problem)
        .expect("all values fit u32, so the narrow mirror must be eligible");
    let m = problem.num_sites();
    let mut wide_scratch = vec![0u64; m];
    let mut narrow_scratch = vec![0u32; m];
    for k in 0..problem.num_objects() {
        let object = ObjectId::new(k);
        let primary = problem.primary(object).index();
        for &mask in masks {
            let replicas = replica_list(mask, m, primary);
            let wide = problem.object_cost_from_replicas(object, &replicas, &mut wide_scratch);
            let narrow =
                mirror.object_cost_from_replicas(problem, object, &replicas, &mut narrow_scratch);
            assert_eq!(
                wide, narrow,
                "object {k}, replicas {replicas:?}: wide {wide} != narrow {narrow}"
            );
        }
    }
}

proptest! {
    /// Link costs near the top of the u32 range (pairwise up to
    /// ~2^31): read/write · cost products overflow u32 ~500x over.
    #[test]
    fn huge_costs_stay_bit_identical(
        step in (1u64 << 28)..(1u64 << 29),
        sizes in prop::collection::vec(1u64..16, 2..4),
        rw in prop::collection::vec(0u64..64, 15),
        masks in prop::collection::vec(0u32..32, 4),
    ) {
        let problem = instance(5, step, &sizes, &rw);
        assert_paths_agree(&problem, &masks);
    }

    /// Access frequencies near 2^30 per site against small costs: the
    /// traffic sums cross u32 while every stored value still fits.
    #[test]
    fn huge_frequencies_stay_bit_identical(
        step in 1u64..3,
        sizes in prop::collection::vec(1u64..16, 2..4),
        rw in prop::collection::vec((1u64 << 28)..(1u64 << 30), 15),
        masks in prop::collection::vec(0u32..32, 4),
    ) {
        let problem = instance(5, step, &sizes, &rw);
        assert_paths_agree(&problem, &masks);
    }

    /// Object sizes near 2^31: the `o · traffic` and update-volume
    /// products are the overflow hazards.
    #[test]
    fn huge_sizes_stay_bit_identical(
        step in 1u64..3,
        sizes in prop::collection::vec((1u64 << 30)..(1u64 << 31), 2..4),
        rw in prop::collection::vec(0u64..8, 15),
        masks in prop::collection::vec(0u32..32, 4),
    ) {
        let problem = instance(5, step, &sizes, &rw);
        assert_paths_agree(&problem, &masks);
    }
}

/// One mirrored value just past u32 must disqualify the mirror rather
/// than wrap. (Object sizes are never narrowed — they multiply already-
/// widened sums — so the hazard tables are costs and frequencies.)
#[test]
fn narrow_mirror_rejects_values_past_u32() {
    let over = u64::from(u32::MAX) + 1;
    let problem = instance(3, 2, &[4], &[over, 0, 1]);
    assert!(NarrowMirror::build(&problem).is_none());
    // The same shape one unit narrower is eligible.
    let problem = instance(3, 2, &[4], &[over - 1, 0, 1]);
    assert!(NarrowMirror::build(&problem).is_some());
}
