//! Property-based tests of [`drp_core::CostEvaluator`]: random flip
//! sequences must agree *exactly* (integer equality) with recomputing
//! [`drp_core::Problem::total_cost`] from scratch, and undo must restore
//! the previous totals step by step.

use drp_core::{CostEvaluator, ObjectId, Problem, SiteId};
use drp_workload::WorkloadSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_problem(seed: u64) -> Problem {
    WorkloadSpec::paper(8, 10, 5.0, 40.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// Decodes one step of the random walk into a flip attempt; invalid
/// attempts (primary removal, capacity, duplicates) are skipped — exactly
/// the guards every search loop runs before touching the evaluator.
fn try_step(eval: &mut CostEvaluator<'_>, step: usize) -> bool {
    let problem = eval.problem();
    let m = problem.num_sites();
    let n = problem.num_objects();
    let site = SiteId::new(step % m);
    let object = ObjectId::new((step / m) % n);
    if eval.scheme().holds(site, object) {
        if problem.primary(object) == site {
            return false;
        }
        let peek = eval.delta_remove(site, object);
        let applied = eval.apply_remove(site, object).unwrap();
        assert_eq!(peek, applied, "remove peek must equal the applied delta");
        true
    } else {
        if problem.object_size(object) > eval.scheme().free_capacity(problem, site) {
            return false;
        }
        let peek = eval.delta_add(site, object);
        let applied = eval.apply_add(site, object).unwrap();
        assert_eq!(peek, applied, "add peek must equal the applied delta");
        true
    }
}

proptest! {
    #[test]
    fn flip_sequences_agree_with_full_recomputation(
        instance_seed in 0u64..20,
        steps in prop::collection::vec(0usize..10_000, 1..60),
    ) {
        let problem = paper_problem(instance_seed);
        let mut eval = CostEvaluator::primary_only(&problem);
        prop_assert_eq!(eval.total(), problem.d_prime());
        for &step in &steps {
            try_step(&mut eval, step);
            // Integer-exact agreement after *every* flip, not just at the end.
            prop_assert_eq!(eval.total(), problem.total_cost(eval.scheme()));
        }
        // The cached per-object costs must also agree, and sum to the total.
        let mut sum = 0u64;
        for k in problem.objects() {
            prop_assert_eq!(eval.object_cost(k), problem.object_cost(eval.scheme(), k));
            sum += eval.object_cost(k);
        }
        prop_assert_eq!(sum, eval.total());
    }

    #[test]
    fn cached_nearest_matches_scheme_queries(
        instance_seed in 0u64..20,
        steps in prop::collection::vec(0usize..10_000, 1..40),
    ) {
        let problem = paper_problem(instance_seed);
        let mut eval = CostEvaluator::primary_only(&problem);
        for &step in &steps {
            try_step(&mut eval, step);
        }
        for k in problem.objects() {
            for i in problem.sites() {
                prop_assert_eq!(
                    eval.nearest(i, k),
                    eval.scheme().nearest_replica(&problem, i, k),
                    "nearest({}, {})", i, k
                );
                // The second-nearest, when present, is a real replicator
                // distinct from the nearest and no closer than it.
                if let Some((second, cost)) = eval.second_nearest(i, k) {
                    let (first, best) = eval.nearest(i, k);
                    prop_assert!(second != first);
                    prop_assert!(eval.scheme().holds(second, k));
                    prop_assert_eq!(cost, problem.costs().cost(second.index(), i.index()));
                    prop_assert!(cost >= best);
                }
            }
        }
    }

    #[test]
    fn undo_walks_back_through_exact_totals(
        instance_seed in 0u64..20,
        steps in prop::collection::vec(0usize..10_000, 1..50),
    ) {
        let problem = paper_problem(instance_seed);
        let mut eval = CostEvaluator::primary_only(&problem);
        // Record the total before every applied flip.
        let mut trail = Vec::new();
        for &step in &steps {
            let before = eval.total();
            if try_step(&mut eval, step) {
                trail.push(before);
            }
        }
        prop_assert_eq!(eval.history_len(), trail.len());
        // Undoing must retrace the exact totals in reverse, and the cache
        // must stay coherent with a full recomputation at every stop.
        while let Some(expected) = trail.pop() {
            let undone = eval.undo().expect("history is non-empty");
            prop_assert_eq!(eval.total(), expected);
            prop_assert_eq!(eval.total(), problem.total_cost(eval.scheme()));
            let _ = undone;
        }
        prop_assert_eq!(eval.undo(), None);
        prop_assert_eq!(eval.total(), problem.d_prime());
    }
}
