//! Property-based tests of the bit-packed scheme scans: the popcount
//! fast paths (`replica_count`, `site_replica_count`, word-wise
//! `objects_at`) must agree exactly with walking the `replicators()`
//! iterator, under arbitrary add/remove sequences.

use drp_core::{ObjectId, Problem, ReplicationScheme, SiteId};
use drp_workload::WorkloadSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_problem(seed: u64) -> Problem {
    WorkloadSpec::paper(9, 11, 5.0, 40.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// One step of a random walk over the scheme: flip the addressed
/// replica if the move is legal, skip it otherwise.
fn try_step(problem: &Problem, scheme: &mut ReplicationScheme, step: usize) {
    let m = problem.num_sites();
    let n = problem.num_objects();
    let site = SiteId::new(step % m);
    let object = ObjectId::new((step / m) % n);
    if scheme.holds(site, object) {
        if problem.primary(object) != site {
            scheme.remove_replica(problem, site, object).unwrap();
        }
    } else if problem.object_size(object) <= scheme.free_capacity(problem, site) {
        scheme.add_replica(problem, site, object).unwrap();
    }
}

proptest! {
    #[test]
    fn popcount_scans_agree_with_replicator_walks(
        instance_seed in 0u64..20,
        steps in prop::collection::vec(0usize..10_000, 1..80),
    ) {
        let problem = paper_problem(instance_seed);
        let mut scheme = ReplicationScheme::primary_only(&problem);
        for step in steps {
            try_step(&problem, &mut scheme, step);

            // Global popcount vs summing the per-object iterator.
            let walked: usize = problem
                .objects()
                .map(|k| scheme.replicators(k).count())
                .sum();
            prop_assert_eq!(scheme.replica_count(), walked);

            // Per-site ranged popcount vs the word-wise objects_at scan
            // vs per-bit holds() probes.
            for i in problem.sites() {
                let listed: Vec<ObjectId> = scheme.objects_at(i).collect();
                let probed: Vec<ObjectId> = problem
                    .objects()
                    .filter(|&k| scheme.holds(i, k))
                    .collect();
                prop_assert_eq!(&listed, &probed);
                prop_assert_eq!(scheme.site_replica_count(i), probed.len());
            }

            // Replica degree stays consistent with the iterator too.
            for k in problem.objects() {
                prop_assert_eq!(
                    scheme.replica_degree(k),
                    scheme.replicators(k).count()
                );
            }
        }
    }
}
