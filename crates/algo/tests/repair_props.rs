//! Property tests for the fault-injection + self-healing repair pipeline.
//!
//! Deliberately plain `#[test]` seed loops rather than `proptest!`
//! generators: the inputs that matter (fault schedules, workloads) are
//! already seeded and deterministic, so enumerating seeds gives the same
//! coverage with reproducible failures by construction.

use drp_algo::fault_tolerance::ensure_min_degree;
use drp_algo::repair::{run_faulted, FaultedRun, RepairConfig};
use drp_core::{Problem, ReplicationScheme, SiteId};
use drp_net::sim::FaultPlan;
use drp_net::CostMatrix;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_problem(seed: u64) -> Problem {
    // Paper-style instance, small enough to keep dozens of runs fast.
    WorkloadSpec::paper(8, 6, 6.0, 80.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

fn degree_2_scheme(p: &Problem) -> ReplicationScheme {
    let mut s = ReplicationScheme::primary_only(p);
    ensure_min_degree(p, &mut s, 2).unwrap();
    s
}

/// A seeded plan that crashes two distinct sites for overlapping windows
/// and adds mild message loss and jitter.
fn two_crash_plan(seed: u64, num_sites: usize) -> FaultPlan {
    let a = (seed as usize * 3 + 1) % num_sites;
    let mut b = (seed as usize * 5 + 2) % num_sites;
    if b == a {
        b = (b + 1) % num_sites;
    }
    FaultPlan::new(seed)
        .crash(a, 60, 420)
        .crash(b, 150, 600)
        .drop_probability(0.02)
        .jitter(1)
}

/// Property (a): after crash + recover + repair, every object is back at
/// (or above) the min-degree floor, no primary was evicted, and no site
/// exceeds its capacity.
#[test]
fn repair_restores_min_degree_without_breaking_invariants() {
    for seed in 0..12u64 {
        let p = random_problem(seed);
        let s = degree_2_scheme(&p);
        let plan = two_crash_plan(seed, p.num_sites());
        let run = run_faulted(&p, &s, Some(plan), RepairConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let r = &run.report;

        assert!(r.reads_balanced(), "seed {seed}: {r}");
        assert!(r.writes_balanced(), "seed {seed}: {r}");

        // Replicas are only ever added, never moved or evicted: the final
        // scheme still validates (capacity s(i) respected) and every
        // primary copy survived.
        run.scheme
            .validate(&p)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for k in p.objects() {
            assert!(
                run.scheme.holds(p.primary(k), k),
                "seed {seed}: primary of {k} evicted"
            );
            assert!(
                run.scheme.replica_degree(k) >= s.replica_degree(k),
                "seed {seed}: replicas of {k} were removed"
            );
        }

        // With generous capacity the floor is restorable everywhere.
        assert_eq!(r.min_degree_unmet, 0, "seed {seed}: {r}");
        for k in p.objects() {
            assert!(
                run.scheme.replica_degree(k) >= 2.min(p.num_sites()),
                "seed {seed}: object {k} below floor after repair"
            );
        }
    }
}

/// Property (b): the same `FaultPlan` seed produces bitwise-identical
/// traffic matrices and degradation reports across runs.
#[test]
fn identical_plans_are_bitwise_reproducible() {
    for seed in 0..8u64 {
        let p = random_problem(seed);
        let s = degree_2_scheme(&p);
        let go = || {
            run_faulted(
                &p,
                &s,
                Some(two_crash_plan(seed, p.num_sites())),
                RepairConfig::default(),
            )
            .unwrap()
        };
        let a: FaultedRun = go();
        let b: FaultedRun = go();
        assert_eq!(a.report, b.report, "seed {seed}");
        assert_eq!(a.traffic, b.traffic, "seed {seed}");
        assert_eq!(a.stats, b.stats, "seed {seed}");
        assert_eq!(a.fault_stats, b.fault_stats, "seed {seed}");
        assert_eq!(a.scheme, b.scheme, "seed {seed}");
        assert_eq!(a.events, b.events, "seed {seed}");
    }
}

/// 10-site ring metric with hand-laid workloads — rand-free, so golden
/// values derived from it hold on any platform or dependency version.
fn ten_site_problem() -> Problem {
    // C(i, j) = min distance around a ring of unit-cost hops, doubled.
    let m = 10usize;
    let mut rows = Vec::with_capacity(m * m);
    for i in 0..m {
        for j in 0..m {
            let d = (i as i64 - j as i64).unsigned_abs();
            rows.push(d.min(m as u64 - d) * 2);
        }
    }
    let costs = CostMatrix::from_rows(m, rows).unwrap();
    let mut builder = Problem::builder(costs);
    builder.capacities(vec![40; m]);
    for k in 0..5usize {
        let reads: Vec<u64> = (0..m).map(|i| ((i + k) % 4) as u64).collect();
        let writes: Vec<u64> = (0..m).map(|i| u64::from((i + k) % 5 == 0)).collect();
        builder
            .object(4 + k as u64, SiteId::new((k * 2) % m))
            .reads(reads)
            .writes(writes);
    }
    builder.build().unwrap()
}

/// The issue's acceptance scenario, on a hand-built (rand-free) topology:
/// a seeded plan crashing 2 of 10 sites must yield zero lost client
/// reads, repair must restore the min-degree floor, and the run must be
/// deterministic across two executions.
#[test]
fn acceptance_two_of_ten_sites_crash() {
    let p = ten_site_problem();
    let s = degree_2_scheme(&p);

    let plan = || {
        FaultPlan::new(0xFA17)
            .crash(2, 80, 380)
            .crash(5, 120, 450)
            .jitter(1)
    };
    let config = RepairConfig {
        horizon: 800,
        ..RepairConfig::default()
    };

    let run = run_faulted(&p, &s, Some(plan()), config.clone()).unwrap();
    let r = &run.report;
    assert!(r.reads_balanced(), "{r}");
    assert!(r.writes_balanced(), "{r}");

    // Zero lost client reads: every read was eventually served (reads
    // pending on the crashed sites themselves are abandoned with the
    // client, which is the fate of the client, not of the service).
    assert_eq!(r.reads_lost, 0, "{r}");
    assert!(r.reads_total > 0);

    // Repair restored the floor.
    assert_eq!(r.min_degree_unmet, 0, "{r}");
    for k in p.objects() {
        assert!(run.scheme.replica_degree(k) >= 2);
    }

    // Deterministic across two runs.
    let again = run_faulted(&p, &s, Some(plan()), config).unwrap();
    assert_eq!(run.report, again.report);
    assert_eq!(run.traffic, again.traffic);
    assert_eq!(run.fault_stats, again.fault_stats);
}

/// CI's golden smoke: the fixed plan on the fixed topology must produce
/// exactly this report, field for field. Rand-free inputs make the golden
/// platform-independent; any engine or protocol change that shifts it is
/// visible (and, if intended, updated) here.
#[test]
fn golden_degradation_report() {
    let p = ten_site_problem();
    let s = degree_2_scheme(&p);
    let plan = FaultPlan::new(0xD0_0D)
        .crash(1, 70, 260)
        .crash(6, 90, 310)
        .jitter(1);
    let config = RepairConfig {
        horizon: 400,
        ..RepairConfig::default()
    };
    let run = run_faulted(&p, &s, Some(plan), config).unwrap();
    let report = run.report;
    assert!(
        report.reads_balanced() && report.writes_balanced(),
        "{report}"
    );
    let golden = drp_core::DegradationReport {
        reads_total: 67,
        reads_local: 17,
        reads_remote: 45,
        reads_degraded: 5,
        reads_stale: 1,
        reads_lost: 0,
        reads_abandoned: 0,
        writes_total: 8,
        writes_first_try: 4,
        writes_queued: 4,
        write_retries: 8,
        writes_recovered: 4,
        writes_lost: 0,
        writes_abandoned: 0,
        repair_replicas_created: 2,
        repair_traffic: 44,
        stale_window: 0,
        min_degree_unmet: 0,
        first_degradation_at: Some(100),
        time_to_restored_degree: 50,
        completion_time: 650,
    };
    assert_eq!(report, golden, "\nactual:\n{report:#?}");
}

/// The injector-off path is itself deterministic and loss-free, which the
/// bench baseline (`BENCH_faults.json`) relies on.
#[test]
fn injector_off_baseline_is_clean_and_deterministic() {
    for seed in [0u64, 5, 9] {
        let p = random_problem(seed);
        let s = degree_2_scheme(&p);
        let a = run_faulted(&p, &s, None, RepairConfig::default()).unwrap();
        let b = run_faulted(&p, &s, None, RepairConfig::default()).unwrap();
        assert_eq!(a.report, b.report, "seed {seed}");
        assert_eq!(a.traffic, b.traffic, "seed {seed}");
        let r = &a.report;
        assert_eq!(
            r.reads_lost + r.reads_abandoned + r.reads_degraded,
            0,
            "seed {seed}: {r}"
        );
        assert_eq!(r.writes_lost + r.writes_abandoned, 0, "seed {seed}: {r}");
        assert_eq!(r.repair_replicas_created, 0, "seed {seed}");
        assert_eq!(r.first_degradation_at, None, "seed {seed}");
    }
}
