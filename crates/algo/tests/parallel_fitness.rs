//! Property-based determinism tests of the parallel population fitness:
//! scoring on worker threads must be bit-for-bit identical to the serial
//! path — same fitness values, same repaired chromosomes, same GA runs.

use drp_algo::{
    chromosome_cost, evaluate_population, evaluate_population_pooled, Agra, AgraConfig, Gra,
    GraConfig, ScratchPool,
};
use drp_core::pool::WorkerPool;
use drp_ga::BitString;
use drp_workload::{PatternChange, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn paper_problem(seed: u64) -> drp_core::Problem {
    WorkloadSpec::paper(8, 10, 5.0, 30.0)
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

proptest! {
    // Keep the case count modest: every case runs two full (small) GA runs.
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn full_gra_runs_are_identical_serial_vs_parallel(
        instance_seed in 0u64..50,
        run_seed in 0u64..1000,
    ) {
        let problem = paper_problem(instance_seed);
        let config = GraConfig {
            population_size: 12,
            generations: 8,
            ..GraConfig::default()
        };
        let serial = Gra::with_config(GraConfig { parallel_fitness: false, ..config.clone() })
            .solve_detailed(&problem, &mut StdRng::seed_from_u64(run_seed))
            .unwrap();
        let parallel = Gra::with_config(GraConfig { parallel_fitness: true, ..config })
            .solve_detailed(&problem, &mut StdRng::seed_from_u64(run_seed))
            .unwrap();
        prop_assert_eq!(serial.scheme, parallel.scheme);
        prop_assert_eq!(serial.fitness, parallel.fitness);
        prop_assert_eq!(serial.outcome.evaluations, parallel.outcome.evaluations);
        prop_assert_eq!(serial.outcome.best, parallel.outcome.best);
        prop_assert_eq!(
            serial.outcome.final_population,
            parallel.outcome.final_population
        );
        prop_assert_eq!(serial.outcome.history.len(), parallel.outcome.history.len());
    }
}

proptest! {
    // Each case runs a GRA seed plus two full adaptation passes.
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn agra_adaptation_is_identical_serial_vs_parallel(
        instance_seed in 0u64..30,
        run_seed in 0u64..1000,
    ) {
        let problem = paper_problem(instance_seed);
        let gra = Gra::with_config(GraConfig {
            population_size: 12,
            generations: 6,
            ..GraConfig::default()
        });
        let run = gra
            .solve_detailed(&problem, &mut StdRng::seed_from_u64(run_seed))
            .unwrap();
        let change = PatternChange {
            change_percent: 250.0,
            objects_percent: 30.0,
            read_share: 0.7,
        };
        let shift = change
            .apply(&problem, &mut StdRng::seed_from_u64(run_seed.wrapping_add(1)))
            .unwrap();
        let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();
        prop_assume!(!changed.is_empty());
        let population: Vec<BitString> = run
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect();
        let adapt = |parallel: bool| {
            let config = AgraConfig {
                gra: GraConfig { parallel_fitness: parallel, ..GraConfig::default() },
                ..AgraConfig::default()
            };
            Agra::with_config(config)
                .adapt(
                    &shift.problem,
                    &run.scheme,
                    &population,
                    &changed,
                    &mut StdRng::seed_from_u64(run_seed.wrapping_add(2)),
                )
                .unwrap()
        };
        let serial = adapt(false);
        let parallel = adapt(true);
        // Micro-GA batches and the mini-GRA polish both fan out on the
        // worker pool; results must be bit-for-bit identical either way.
        prop_assert_eq!(serial.scheme, parallel.scheme);
        prop_assert_eq!(serial.fitness, parallel.fitness);
        prop_assert_eq!(serial.population, parallel.population);
        prop_assert_eq!(serial.micro_evaluations, parallel.micro_evaluations);
        prop_assert_eq!(serial.mini_evaluations, parallel.mini_evaluations);
    }
}

proptest! {
    #[test]
    fn pooled_scoring_is_identical_across_pool_sizes_and_widths(
        instance_seed in 0u64..50,
        pop_seed in 0u64..1000,
        pop_size in 1usize..24,
    ) {
        // The in-process equivalent of running under DRP_THREADS ∈ {1,2,4}:
        // the env var is latched once by the global pool, so thread-count
        // parity is probed with explicit pools. The wide (u64-only) scratch
        // on one thread is the pre-kernel reference; every other
        // pool-size × scratch-width combination must reproduce it bitwise —
        // fitness values AND repaired chromosomes.
        let problem = paper_problem(instance_seed);
        let len = problem.num_sites() * problem.num_objects();
        let mut rng = StdRng::seed_from_u64(pop_seed);
        let seed_population: Vec<(BitString, f64)> = (0..pop_size)
            .map(|_| (BitString::random(len, &mut rng), -1.0))
            .collect();

        let mut reference = seed_population.clone();
        evaluate_population_pooled(
            &problem,
            &mut reference,
            &ScratchPool::wide(&problem),
            &WorkerPool::new(1),
        );

        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            for narrow in [false, true] {
                let scratch = if narrow {
                    ScratchPool::new(&problem)
                } else {
                    ScratchPool::wide(&problem)
                };
                let mut population = seed_population.clone();
                evaluate_population_pooled(&problem, &mut population, &scratch, &pool);
                prop_assert_eq!(
                    &population,
                    &reference,
                    "pool={} narrow={}",
                    threads,
                    narrow
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn population_scoring_is_identical_serial_vs_parallel(
        instance_seed in 0u64..50,
        pop_seed in 0u64..1000,
        pop_size in 1usize..40,
    ) {
        let problem = paper_problem(instance_seed);
        let len = problem.num_sites() * problem.num_objects();
        let mut rng = StdRng::seed_from_u64(pop_seed);
        // Raw random bitstrings exercise the repair path too (negative
        // fitness resets the chromosome to primary-only).
        let chromosomes: Vec<BitString> =
            (0..pop_size).map(|_| BitString::random(len, &mut rng)).collect();
        let mut serial: Vec<(BitString, f64)> =
            chromosomes.iter().cloned().map(|c| (c, -1.0)).collect();
        let mut parallel: Vec<(BitString, f64)> =
            chromosomes.into_iter().map(|c| (c, -1.0)).collect();
        evaluate_population(&problem, &mut serial, false);
        evaluate_population(&problem, &mut parallel, true);
        prop_assert_eq!(&serial, &parallel);
        // Spot-check the scores against the plain chromosome cost.
        let dp = problem.d_prime();
        prop_assume!(dp > 0);
        for (chromosome, fitness) in &serial {
            let expected = (dp as f64 - chromosome_cost(&problem, chromosome) as f64) / dp as f64;
            prop_assert_eq!(*fitness, expected.max(0.0));
        }
    }
}
