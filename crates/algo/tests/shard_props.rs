//! Sharded-vs-flat parity suite (ISSUE satellite 4): on instances small
//! enough to solve both ways, the sharded hierarchical driver must produce
//! feasible placements, stay within a bounded NTC ratio of the flat GRA,
//! and be bitwise deterministic across the `parallel` fitness path.

use drp_algo::shard::{ShardConfig, ShardSolver, ShardedSolver};
use drp_algo::{Gra, GraConfig};
use drp_core::ReplicationAlgorithm;
use drp_workload::{TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hier_spec(m: usize, n: usize, clusters: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper(m, n, 5.0, 30.0);
    spec.topology = TopologyKind::Hierarchical {
        clusters,
        wan_factor: 10,
    };
    spec
}

#[test]
fn sharded_placement_is_feasible_at_m_300() {
    let sp = hier_spec(300, 12, 6)
        .generate_sparse(&mut StdRng::seed_from_u64(3))
        .unwrap();
    let outcome = ShardedSolver::new(6).solve(&sp, 3).unwrap();
    // Feasibility is re-validated from scratch: sorted lists, primaries
    // present, capacities respected.
    sp.validate_placement(&outcome.placement).unwrap();
    assert_eq!(outcome.ntc, sp.total_cost(&outcome.placement).unwrap());
    assert_eq!(outcome.d_prime, sp.d_prime());
    assert!(
        outcome.ntc <= outcome.d_prime,
        "replication must not cost more than primary-only: {} > {}",
        outcome.ntc,
        outcome.d_prime
    );
    assert_eq!(outcome.report.clusters, 6);
    assert_eq!(outcome.report.shard_sites.iter().sum::<usize>(), 300);
    assert!(outcome.report.shard_sites.iter().all(|&s| s > 0));
}

#[test]
fn sharded_tracks_flat_gra_within_budget() {
    let spec = hier_spec(120, 16, 4);
    let sp = spec
        .generate_sparse(&mut StdRng::seed_from_u64(11))
        .unwrap();
    let dense = sp.to_dense().unwrap();

    let flat_scheme = Gra::default()
        .solve(&dense, &mut StdRng::seed_from_u64(11))
        .unwrap();
    let flat_ntc = dense.total_cost(&flat_scheme);

    let sharded = ShardedSolver::new(4).solve(&sp, 11).unwrap();
    let ratio = sharded.ntc as f64 / flat_ntc as f64;
    assert!(
        ratio <= 1.15,
        "sharded NTC {} vs flat {} (ratio {ratio:.4}) exceeds the parity budget",
        sharded.ntc,
        flat_ntc
    );
}

#[test]
fn determinism_across_parallel_fitness_paths() {
    let sp = hier_spec(90, 10, 3)
        .generate_sparse(&mut StdRng::seed_from_u64(5))
        .unwrap();
    let serial = ShardedSolver::with_config(ShardConfig {
        shards: 3,
        gra: GraConfig {
            population_size: 16,
            generations: 24,
            parallel_fitness: false,
            ..GraConfig::default()
        },
        ..ShardConfig::default()
    })
    .solve(&sp, 5)
    .unwrap();
    let parallel = ShardedSolver::with_config(ShardConfig {
        shards: 3,
        gra: GraConfig {
            population_size: 16,
            generations: 24,
            parallel_fitness: true,
            ..GraConfig::default()
        },
        ..ShardConfig::default()
    })
    .solve(&sp, 5)
    .unwrap();
    assert_eq!(serial.placement, parallel.placement);
    assert_eq!(serial.fingerprint(), parallel.fingerprint());
    assert_eq!(serial.ntc, parallel.ntc);
    // And the whole pipeline is a pure function of (instance, seed).
    let again = ShardedSolver::with_config(ShardConfig {
        shards: 3,
        gra: GraConfig {
            population_size: 16,
            generations: 24,
            parallel_fitness: false,
            ..GraConfig::default()
        },
        ..ShardConfig::default()
    })
    .solve(&sp, 5)
    .unwrap();
    assert_eq!(serial.fingerprint(), again.fingerprint());
}

#[test]
fn single_shard_degenerates_to_a_flat_solve() {
    let sp = hier_spec(40, 8, 2)
        .generate_sparse(&mut StdRng::seed_from_u64(9))
        .unwrap();
    let outcome = ShardedSolver::new(1).solve(&sp, 9).unwrap();
    assert_eq!(outcome.report.clusters, 1);
    assert_eq!(outcome.report.border_requested, 0);
    assert_eq!(outcome.report.shard_sites, vec![40]);
    sp.validate_placement(&outcome.placement).unwrap();
    assert!(outcome.ntc <= outcome.d_prime);
}

#[test]
fn tree_shards_use_the_exact_oracle() {
    let mut spec = WorkloadSpec::paper(63, 8, 5.0, 30.0);
    spec.topology = TopologyKind::Tree { arity: 2 };
    let sp = spec
        .generate_sparse(&mut StdRng::seed_from_u64(21))
        .unwrap();
    let outcome = ShardedSolver::new(4).solve(&sp, 21).unwrap();
    // Connected cells of a tree are subtrees, and contracting subtrees
    // keeps a tree: every shard metric is a tree, so ADR solves each one
    // exactly.
    assert!(
        outcome
            .report
            .solvers
            .iter()
            .all(|&s| s == ShardSolver::Tree),
        "tree instance must route every shard to ADR: {:?}",
        outcome.report.solvers
    );
    sp.validate_placement(&outcome.placement).unwrap();
}

#[test]
fn fingerprints_separate_distinct_seeds() {
    let sp = hier_spec(80, 10, 4)
        .generate_sparse(&mut StdRng::seed_from_u64(2))
        .unwrap();
    let a = ShardedSolver::new(4).solve(&sp, 1).unwrap();
    let b = ShardedSolver::new(4).solve(&sp, 2).unwrap();
    // Different solve seeds explore differently; identical outcomes would
    // suggest the seed is ignored. (Equality of placements is possible in
    // principle, so compare the richer pair.)
    assert!(
        a.fingerprint() != b.fingerprint() || a.ntc == b.ntc,
        "same fingerprint should at least mean same cost"
    );
}
