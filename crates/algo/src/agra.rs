//! The *Adaptive Genetic Replication Algorithm* (Section 5).
//!
//! When an object's read/write pattern shifts past a threshold, AGRA runs a
//! per-object micro-GA over `M`-bit chromosomes (one bit per site) against
//! the *unconstrained* per-object NTC `V_k`, then *transcribes* its
//! solutions into the last known GRA population: the best replica set lands
//! in half of the chromosomes (including the one mirroring the current
//! network distribution), the rest are scattered over the other half.
//! Capacity violations introduced by transcription are repaired greedily by
//! deallocating the object with the lowest Eq. 6 replica-value estimate.
//! Optionally, a short "mini-GRA" (5–10 generations) polishes the
//! transcribed population.

use std::sync::{Arc, Mutex};

use drp_core::telemetry::{self, Recorder};
use drp_core::{
    kernels, CoreError, NarrowMirror, ObjectId, Problem, ReplicationScheme, Result, SiteId,
};
use drp_ga::{ops, BitString, Engine, GaConfig, GaSpec, SamplingSpace, SelectionScheme};
use rand::{Rng, RngCore};

use crate::encoding::{chromosome_cost, decode_scheme, encode_scheme};
use crate::gra::{Gra, GraConfig};
use crate::RngAdapter;

/// Configuration of AGRA. Defaults follow the paper: `A_p = 10`,
/// `A_g = 50`, single-point crossover at 0.8, mutation 0.01, regular
/// sampling space, elitism, and a 5-generation mini-GRA.
#[derive(Debug, Clone, PartialEq)]
pub struct AgraConfig {
    /// Micro-GA population size `A_p`.
    pub population_size: usize,
    /// Micro-GA generations `A_g`.
    pub generations: usize,
    /// Crossover rate of the micro-GA.
    pub crossover_rate: f64,
    /// Per-bit mutation rate of the micro-GA.
    pub mutation_rate: f64,
    /// Elite re-imposition period of the micro-GA.
    pub elite_period: usize,
    /// Generations of mini-GRA applied to the transcribed population
    /// (0 = stand-alone AGRA, the paper evaluates 0, 5 and 10).
    pub mini_gra_generations: usize,
    /// Operator settings for the mini-GRA phase.
    pub gra: GraConfig,
}

impl Default for AgraConfig {
    fn default() -> Self {
        Self {
            population_size: 10,
            generations: 50,
            crossover_rate: 0.8,
            mutation_rate: 0.01,
            elite_period: 5,
            mini_gra_generations: 5,
            gra: GraConfig::default(),
        }
    }
}

/// Result of one adaptation step.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The new replication scheme to realize on the network.
    pub scheme: ReplicationScheme,
    /// Its fitness `(D_prime − D) / D_prime` under the *new* pattern.
    pub fitness: f64,
    /// The transcribed (and possibly mini-GRA-evolved) population, to be
    /// carried into the next adaptation step.
    pub population: Vec<BitString>,
    /// Fitness evaluations spent in the micro-GAs.
    pub micro_evaluations: u64,
    /// Fitness evaluations spent in the mini-GRA.
    pub mini_evaluations: u64,
}

/// The adaptive algorithm itself.
///
/// # Examples
///
/// ```
/// use drp_algo::{Agra, AgraConfig, Gra, GraConfig};
/// use drp_core::ReplicationAlgorithm;
/// use drp_workload::{PatternChange, WorkloadSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0).generate(&mut rng)?;
/// let gra = Gra::with_config(GraConfig { population_size: 8, generations: 8,
///                                        ..GraConfig::default() });
/// let run = gra.solve_detailed(&problem, &mut rng)?;
///
/// // The pattern shifts...
/// let change = PatternChange { change_percent: 300.0, objects_percent: 20.0, read_share: 1.0 };
/// let shift = change.apply(&problem, &mut rng)?;
/// let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();
///
/// // ...and AGRA re-tunes the scheme without a full GRA run.
/// let population: Vec<_> =
///     run.outcome.final_population.iter().map(|(c, _)| c.clone()).collect();
/// let outcome = Agra::new().adapt(&shift.problem, &run.scheme, &population, &changed, &mut rng)?;
/// assert!(outcome.fitness >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Agra {
    config: AgraConfig,
    recorder: Arc<dyn Recorder>,
}

impl Default for Agra {
    fn default() -> Self {
        Self {
            config: AgraConfig::default(),
            recorder: telemetry::noop(),
        }
    }
}

impl Agra {
    /// AGRA with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// AGRA with an explicit configuration.
    pub fn with_config(config: AgraConfig) -> Self {
        Self {
            config,
            recorder: telemetry::noop(),
        }
    }

    /// Attaches a telemetry recorder: each changed object closes one
    /// `agra.micro_ga` and one `agra.transcription` span, the mini-GRA
    /// polish (when configured) closes `agra.mini_gra`, and the micro-GA
    /// engines forward their own `ga.*` spans. Recording never consumes
    /// randomness, so adaptation results are unchanged.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AgraConfig {
        &self.config
    }

    /// Adapts to a pattern change.
    ///
    /// * `problem` — the instance with the **new** read/write pattern;
    /// * `current` — the scheme presently realized on the network;
    /// * `gra_population` — the last GRA population (may be empty: the
    ///   current scheme is then cloned into a fresh population);
    /// * `changed` — the objects whose pattern shifted past the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] for dimension mismatches.
    pub fn adapt(
        &self,
        problem: &Problem,
        current: &ReplicationScheme,
        gra_population: &[BitString],
        changed: &[ObjectId],
        rng: &mut dyn RngCore,
    ) -> Result<AdaptiveOutcome> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        let len = m * n;
        let current_bits = encode_scheme(problem, current);

        // Assemble the working population; slot 0 mirrors the network.
        let mut population: Vec<BitString> = if gra_population.is_empty() {
            vec![current_bits.clone(); self.config.gra.population_size.max(2)]
        } else {
            gra_population.to_vec()
        };
        if population.iter().any(|c| c.len() != len) {
            return Err(CoreError::InvalidInstance {
                reason: "population chromosome length mismatches the instance".into(),
            });
        }
        population[0] = current_bits.clone();

        let weights = link_weights(problem);
        // One narrow mirror serves every micro-GA of this adaptation step;
        // `None` (values too wide for u32) falls back to the u64 path.
        let narrow = NarrowMirror::build(problem).map(Arc::new);
        let mut micro_evaluations = 0u64;

        for &object in changed {
            problem.check_object(object)?;
            // 1. Micro-GA over the object's replica set.
            let micro = {
                let _span = telemetry::span(self.recorder.as_ref(), "agra.micro_ga");
                self.run_micro_ga(problem, current, &population, object, narrow.clone(), rng)?
            };
            micro_evaluations += micro.evaluations;

            // 2. Transcription into the GRA population.
            let _span = telemetry::span(self.recorder.as_ref(), "agra.transcription");
            let half = population.len().div_ceil(2);
            for (index, chromosome) in population.iter_mut().enumerate() {
                let source = if index < half {
                    // Best replica set → first half (elite slot 0 included).
                    &micro.final_population[0].0
                } else {
                    // The remaining sets are scattered randomly.
                    let pick = rng.random_range(0..micro.final_population.len());
                    &micro.final_population[pick].0
                };
                write_column(chromosome, n, object, source);
                ensure_primary_bits(problem, chromosome);
                repair_capacity(problem, chromosome, &weights);
            }
        }

        // Keep the untouched current distribution in the pool: transcription
        // plus capacity repair can regress *other* objects' replicas, and
        // the monitor must never adopt a scheme worse than the one already
        // running on the network.
        if population.len() > 1 {
            let last = population.len() - 1;
            population[last] = current_bits.clone();
        }
        let dp = problem.d_prime().max(1);
        let fitness_of =
            |bits: &BitString| (dp as f64 - chromosome_cost(problem, bits) as f64) / dp as f64;
        let current_fitness = fitness_of(&current_bits);

        // 3. Stand-alone pick or mini-GRA polish.
        let mut outcome = if self.config.mini_gra_generations > 0 {
            let _span = telemetry::span(self.recorder.as_ref(), "agra.mini_gra");
            let gra = Gra::with_config(GraConfig {
                population_size: population.len(),
                ..self.config.gra.clone()
            })
            .with_recorder(self.recorder.clone());
            let run = gra.evolve(problem, population, self.config.mini_gra_generations, rng)?;
            AdaptiveOutcome {
                scheme: run.scheme,
                fitness: run.fitness,
                population: run
                    .outcome
                    .final_population
                    .iter()
                    .map(|(c, _)| c.clone())
                    .collect(),
                micro_evaluations,
                mini_evaluations: run.outcome.evaluations,
            }
        } else {
            let (best, fitness) = population
                .iter()
                .map(|c| (c, fitness_of(c)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("population is non-empty");
            let scheme = decode_scheme(problem, best)?;
            let fitness = fitness.max(0.0);
            AdaptiveOutcome {
                scheme,
                fitness,
                population,
                micro_evaluations,
                mini_evaluations: 0,
            }
        };

        // Adopt-only-if-better guard.
        if outcome.fitness < current_fitness {
            outcome.scheme = current.clone();
            outcome.fitness = current_fitness;
        }
        Ok(outcome)
    }

    fn run_micro_ga(
        &self,
        problem: &Problem,
        current: &ReplicationScheme,
        population: &[BitString],
        object: ObjectId,
        narrow: Option<Arc<NarrowMirror>>,
        rng: &mut dyn RngCore,
    ) -> Result<drp_ga::GaOutcome> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        let ap = self.config.population_size.max(2);

        // Half random, half projected from the GRA population; slot 0 is the
        // object's current replica set.
        let mut initial = Vec::with_capacity(ap);
        initial.push(BitString::from_fn(m, |i| {
            current.holds(SiteId::new(i), object)
        }));
        for source in population.iter().take(ap / 2) {
            initial.push(BitString::from_fn(m, |i| {
                source.get(i * n + object.index())
            }));
        }
        while initial.len() < ap {
            initial.push(BitString::random(m, rng));
        }

        let spec = MicroSpec::new(problem, object)
            .with_mirror(narrow)
            .parallel_fitness(self.config.gra.parallel_fitness);
        for chromosome in &mut initial {
            chromosome.set(spec.primary_bit, true);
        }

        let config = GaConfig::new(ap, self.config.generations)
            .crossover_rate(self.config.crossover_rate)
            .mutation_rate(self.config.mutation_rate)
            .selection(SelectionScheme::StochasticRemainder)
            .sampling(SamplingSpace::Regular)
            .elite_period(self.config.elite_period);
        Engine::new(config)
            .with_recorder(self.recorder.clone())
            .run(&spec, initial, &mut RngAdapter(rng))
            .map_err(|e| CoreError::InvalidInstance {
                reason: e.to_string(),
            })
    }
}

/// Detects objects whose total reads or writes moved by more than
/// `threshold_percent` between two instances over the same network — the
/// paper's trigger for running AGRA.
///
/// # Panics
///
/// Panics if the instances have different numbers of objects.
pub fn detect_changed_objects(
    old: &Problem,
    new: &Problem,
    threshold_percent: f64,
) -> Vec<ObjectId> {
    assert_eq!(
        old.num_objects(),
        new.num_objects(),
        "instances must describe the same objects"
    );
    let moved = |a: u64, b: u64| -> bool {
        let base = a.max(1) as f64;
        (b as f64 - a as f64).abs() / base * 100.0 > threshold_percent
    };
    new.objects()
        .filter(|&k| {
            moved(old.total_reads(k), new.total_reads(k))
                || moved(old.total_writes(k), new.total_writes(k))
        })
        .collect()
}

/// Per-site proportional link weights of Eq. 6, precomputed once.
fn link_weights(problem: &Problem) -> Vec<f64> {
    let mean = problem.costs().mean_row_sum();
    (0..problem.num_sites())
        .map(|i| {
            if mean > 0.0 {
                (problem.costs().row_sum(i) as f64 / mean).max(f64::MIN_POSITIVE)
            } else {
                1.0
            }
        })
        .collect()
}

/// Overwrites object `k`'s column with an M-bit replica set.
fn write_column(chromosome: &mut BitString, n: usize, object: ObjectId, replica_set: &BitString) {
    for i in 0..replica_set.len() {
        chromosome.set(i * n + object.index(), replica_set.get(i));
    }
}

fn ensure_primary_bits(problem: &Problem, chromosome: &mut BitString) {
    let n = problem.num_objects();
    for k in problem.objects() {
        chromosome.set(problem.primary(k).index() * n + k.index(), true);
    }
}

/// Greedy capacity repair: at every over-full site, deallocate the held
/// object with the lowest Eq. 6 estimate until the site fits. Primaries are
/// never deallocated (and every site fits its primaries by instance
/// validation, so repair always terminates).
fn repair_capacity(problem: &Problem, chromosome: &mut BitString, weights: &[f64]) {
    let m = problem.num_sites();
    let n = problem.num_objects();
    // Usage per site and replica degree per object.
    let mut used = vec![0u64; m];
    let mut degree = vec![0usize; n];
    for one in chromosome.iter_ones() {
        let (i, k) = (one / n, one % n);
        used[i] += problem.object_size(ObjectId::new(k));
        degree[k] += 1;
    }
    for i in 0..m {
        let site = SiteId::new(i);
        let capacity = problem.capacity(site);
        // Eq. 6 with the precomputed link weight (the generic accessor
        // recomputes the O(M²) mean row sum on every call, far too slow in
        // this loop).
        let estimate = |k: usize, degree: usize| -> f64 {
            let object = ObjectId::new(k);
            let numerator = problem.total_reads(object) as f64
                + problem.writes(site, object) as f64
                - problem.total_writes(object) as f64
                + problem.reads(site, object) as f64 * problem.capacity(site) as f64
                    / problem.object_size(object) as f64;
            numerator / (weights[i] * degree as f64)
        };
        while used[i] > capacity {
            let victim = (0..n)
                .filter(|&k| chromosome.get(i * n + k) && problem.primary(ObjectId::new(k)) != site)
                .min_by(|&a, &b| {
                    estimate(a, degree[a])
                        .partial_cmp(&estimate(b, degree[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("an over-full site must hold a non-primary object");
            chromosome.set(i * n + victim, false);
            used[i] -= problem.object_size(ObjectId::new(victim));
            degree[victim] -= 1;
        }
    }
}

/// Thread-local nearest-cost buffers of one micro-GA worker, recycled
/// across generations through the [`MicroSpec`] arena.
#[derive(Debug)]
struct MicroScratch {
    nearest: Vec<u64>,
    nearest32: Vec<u32>,
}

impl MicroScratch {
    fn new(num_sites: usize) -> Self {
        Self {
            nearest: vec![u64::MAX; num_sites],
            nearest32: vec![u32::MAX; num_sites],
        }
    }
}

/// [`GaSpec`] of the per-object micro-GA: `M`-bit chromosomes scored by the
/// unconstrained per-object NTC `V_k`.
struct MicroSpec<'a> {
    problem: &'a Problem,
    object: ObjectId,
    primary_bit: usize,
    v_prime: u64,
    parallel: bool,
    narrow: Option<Arc<NarrowMirror>>,
    // Free-list of worker scratch, checked out once per chunk per
    // generation: contention is one lock round-trip per worker, and the
    // buffers are fully overwritten before use so recycling cannot affect
    // results.
    scratch: Mutex<Vec<MicroScratch>>,
}

impl<'a> MicroSpec<'a> {
    fn new(problem: &'a Problem, object: ObjectId) -> Self {
        Self {
            problem,
            object,
            primary_bit: problem.primary(object).index(),
            v_prime: problem.v_prime(object),
            parallel: false,
            narrow: None,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Attaches a pre-built u32 mirror of the instance; scoring then runs
    /// the narrow kernels, bitwise-identical to the u64 path.
    fn with_mirror(mut self, narrow: Option<Arc<NarrowMirror>>) -> Self {
        self.narrow = narrow;
        self
    }

    /// Scores batches on the shared [`WorkerPool`](drp_core::pool::WorkerPool)
    /// when set. Micro-GA fitness is a pure per-chromosome function, so the
    /// flag never changes results — only wall-clock.
    fn parallel_fitness(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    fn checkout(&self) -> MicroScratch {
        self.scratch
            .lock()
            .expect("micro scratch mutex poisoned")
            .pop()
            .unwrap_or_else(|| MicroScratch::new(self.problem.num_sites()))
    }

    fn restore(&self, scratch: MicroScratch) {
        self.scratch
            .lock()
            .expect("micro scratch mutex poisoned")
            .push(scratch);
    }

    /// `V_k` of a replica set given as an M-bit string (capacity ignored —
    /// AGRA solves the unconstrained problem and repairs later). `nearest`
    /// is caller-owned scratch, overwritten on every call.
    ///
    /// Streams the contiguous per-object `r_k(·)` / `w_k(·)` rows through
    /// the shared kernels. Replicators have a zero nearest distance (their
    /// own cost-row diagonal), so the full-width [`kernels::traffic_scan`]
    /// only over-charges their write terms, subtracted exactly below —
    /// bitwise-identical to the per-site branchy sum by `u64`
    /// distributivity under the instance overflow guard.
    fn replica_set_cost_with(&self, bits: &BitString, nearest: &mut [u64]) -> u64 {
        let problem = self.problem;
        let object = self.object;
        let sp_row = problem.costs().row(self.primary_bit);
        let r_row = problem.object_reads(object);
        let w_row = problem.object_writes(object);

        let mut broadcast = 0u64;
        let mut replica_writes = 0u64;
        nearest.fill(u64::MAX);
        for j in bits.iter_ones() {
            broadcast += sp_row[j];
            replica_writes += w_row[j] * sp_row[j];
            kernels::min_scan(nearest, problem.costs().row(j));
        }
        let traffic = kernels::traffic_scan(r_row, w_row, nearest, sp_row);
        problem.write_volume(object) * broadcast
            + problem.object_size(object) * (traffic - replica_writes)
    }

    /// The u32-SoA twin of [`replica_set_cost_with`](Self::replica_set_cost_with):
    /// same loop, narrow rows, every product widened through `u64::from` —
    /// the mirror only exists when all values are exact u32 copies, so the
    /// accumulators match the wide path bit for bit.
    fn replica_set_cost_narrow(
        &self,
        narrow: &NarrowMirror,
        bits: &BitString,
        nearest: &mut [u32],
    ) -> u64 {
        let problem = self.problem;
        let object = self.object;
        let sp_row = narrow.cost_row(self.primary_bit);
        let r_row = narrow.reads_row(object.index());
        let w_row = narrow.writes_row(object.index());

        let mut broadcast = 0u64;
        let mut replica_writes = 0u64;
        nearest.fill(u32::MAX);
        for j in bits.iter_ones() {
            broadcast += u64::from(sp_row[j]);
            replica_writes += u64::from(w_row[j]) * u64::from(sp_row[j]);
            kernels::min_scan_u32(nearest, narrow.cost_row(j));
        }
        let traffic = kernels::traffic_scan_u32(r_row, w_row, nearest, sp_row);
        problem.write_volume(object) * broadcast
            + problem.object_size(object) * (traffic - replica_writes)
    }

    /// The micro-GA fitness `(V′_k − V_k) / V′_k` with the reset rule.
    fn score(&self, chromosome: &mut BitString, scratch: &mut MicroScratch) -> f64 {
        chromosome.set(self.primary_bit, true);
        if self.v_prime == 0 {
            return 0.0;
        }
        let v = match &self.narrow {
            Some(narrow) => {
                self.replica_set_cost_narrow(narrow, chromosome, &mut scratch.nearest32)
            }
            None => self.replica_set_cost_with(chromosome, &mut scratch.nearest),
        };
        let fitness = (self.v_prime as f64 - v as f64) / self.v_prime as f64;
        if fitness < 0.0 {
            // Reset to the primary-only replica set, as in GRA.
            *chromosome = BitString::from_fn(chromosome.len(), |i| i == self.primary_bit);
            return 0.0;
        }
        fitness
    }
}

impl GaSpec for MicroSpec<'_> {
    fn evaluate(&self, chromosome: &mut BitString) -> f64 {
        let mut scratch = self.checkout();
        let fitness = self.score(chromosome, &mut scratch);
        self.restore(scratch);
        fitness
    }

    fn evaluate_batch(&self, population: &mut [(BitString, f64)]) {
        let pool = drp_core::pool::WorkerPool::global();
        let workers = if self.parallel && population.len() >= crate::gra::MIN_PARALLEL_BATCH {
            pool.threads().min(population.len())
        } else {
            1
        };
        if workers <= 1 {
            // One recycled scratch serves the whole batch.
            let mut scratch = self.checkout();
            for (chromosome, fitness) in population.iter_mut() {
                *fitness = self.score(chromosome, &mut scratch);
            }
            self.restore(scratch);
            return;
        }
        // Chunk boundaries depend only on the batch length, and scoring is
        // a pure per-chromosome function, so the fan-out is bitwise
        // deterministic for every pool size.
        let chunk = population.len().div_ceil(workers);
        pool.for_each_chunk_mut(population, chunk, |_, slice| {
            let mut scratch = self.checkout();
            for (chromosome, fitness) in slice.iter_mut() {
                *fitness = self.score(chromosome, &mut scratch);
            }
            self.restore(scratch);
        });
    }

    fn crossover(
        &self,
        a: &BitString,
        b: &BitString,
        rng: &mut dyn RngCore,
    ) -> (BitString, BitString) {
        ops::one_point_crossover(a, b, rng)
    }

    fn mutate(&self, chromosome: &mut BitString, rate: f64, rng: &mut dyn RngCore) {
        for bit in ops::bit_flip_mutation(chromosome, rate, rng) {
            if bit == self.primary_bit && !chromosome.get(bit) {
                chromosome.set(bit, true); // primary constraint
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use drp_workload::{PatternChange, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Problem, ReplicationScheme, Vec<BitString>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let gra = Gra::with_config(GraConfig {
            population_size: 8,
            generations: 6,
            ..GraConfig::default()
        });
        let run = gra.solve_detailed(&problem, &mut rng).unwrap();
        let population = run
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect();
        (problem, run.scheme, population)
    }

    #[test]
    fn adapt_produces_valid_scheme() {
        let (problem, scheme, population) = setup(1);
        let mut rng = StdRng::seed_from_u64(2);
        let change = PatternChange {
            change_percent: 400.0,
            objects_percent: 30.0,
            read_share: 0.5,
        };
        let shift = change.apply(&problem, &mut rng).unwrap();
        let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();
        let outcome = Agra::new()
            .adapt(&shift.problem, &scheme, &population, &changed, &mut rng)
            .unwrap();
        outcome.scheme.validate(&shift.problem).unwrap();
        assert!(outcome.fitness >= 0.0);
        assert!(outcome.micro_evaluations > 0);
        assert!(outcome.mini_evaluations > 0);
    }

    #[test]
    fn standalone_agra_skips_mini_gra() {
        let (problem, scheme, population) = setup(3);
        let mut rng = StdRng::seed_from_u64(4);
        let changed = vec![ObjectId::new(0), ObjectId::new(3)];
        let config = AgraConfig {
            mini_gra_generations: 0,
            ..AgraConfig::default()
        };
        let outcome = Agra::with_config(config)
            .adapt(&problem, &scheme, &population, &changed, &mut rng)
            .unwrap();
        assert_eq!(outcome.mini_evaluations, 0);
        outcome.scheme.validate(&problem).unwrap();
    }

    #[test]
    fn adapt_beats_stale_scheme_on_read_surge() {
        let (problem, scheme, population) = setup(5);
        let mut rng = StdRng::seed_from_u64(6);
        let change = PatternChange {
            change_percent: 600.0,
            objects_percent: 40.0,
            read_share: 1.0,
        };
        let shift = change.apply(&problem, &mut rng).unwrap();
        let changed: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();
        let stale = shift.problem.savings_percent(&scheme);
        let outcome = Agra::new()
            .adapt(&shift.problem, &scheme, &population, &changed, &mut rng)
            .unwrap();
        let adapted = shift.problem.savings_percent(&outcome.scheme);
        assert!(
            adapted >= stale - 1e-9,
            "AGRA ({adapted:.2}%) must not lose to the stale scheme ({stale:.2}%)"
        );
    }

    #[test]
    fn empty_population_falls_back_to_current() {
        let (problem, scheme, _) = setup(7);
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = Agra::new()
            .adapt(&problem, &scheme, &[], &[ObjectId::new(1)], &mut rng)
            .unwrap();
        outcome.scheme.validate(&problem).unwrap();
    }

    #[test]
    fn recorded_adapt_is_identical_and_counts_rounds() {
        use drp_core::telemetry::InMemoryRecorder;

        let (problem, scheme, population) = setup(13);
        let changed = vec![ObjectId::new(0), ObjectId::new(2), ObjectId::new(5)];
        let bare = Agra::new()
            .adapt(
                &problem,
                &scheme,
                &population,
                &changed,
                &mut StdRng::seed_from_u64(14),
            )
            .unwrap();
        let recorder = Arc::new(InMemoryRecorder::new());
        let recorded = Agra::new()
            .with_recorder(recorder.clone())
            .adapt(
                &problem,
                &scheme,
                &population,
                &changed,
                &mut StdRng::seed_from_u64(14),
            )
            .unwrap();
        assert_eq!(bare.scheme, recorded.scheme);
        assert_eq!(bare.fitness, recorded.fitness);
        // One micro-GA + one transcription round per changed object, one
        // mini-GRA polish for the whole step.
        assert_eq!(recorder.span_count("agra.micro_ga"), changed.len() as u64);
        assert_eq!(
            recorder.span_count("agra.transcription"),
            changed.len() as u64
        );
        assert_eq!(recorder.span_count("agra.mini_gra"), 1);
        assert_eq!(
            recorder.counter("ga.evaluations"),
            recorded.micro_evaluations + recorded.mini_evaluations
        );
    }

    #[test]
    fn detect_changed_objects_finds_surges() {
        let (problem, _, _) = setup(9);
        let mut rng = StdRng::seed_from_u64(10);
        let change = PatternChange {
            change_percent: 500.0,
            objects_percent: 20.0,
            read_share: 1.0,
        };
        let shift = change.apply(&problem, &mut rng).unwrap();
        let detected = detect_changed_objects(&problem, &shift.problem, 50.0);
        let expected: Vec<_> = shift.changed.iter().map(|(k, _)| *k).collect();
        for k in &expected {
            assert!(detected.contains(k), "object {k} should be detected");
        }
        assert_eq!(detected.len(), expected.len());
    }

    #[test]
    fn micro_spec_fitness_improves_with_good_replicas() {
        let (problem, _, _) = setup(11);
        // Pick an object with nonzero remote reads.
        let object = problem
            .objects()
            .max_by_key(|&k| problem.total_reads(k))
            .unwrap();
        let spec = MicroSpec::new(&problem, object);
        let m = problem.num_sites();
        let mut primary_only = BitString::from_fn(m, |i| i == spec.primary_bit);
        assert_eq!(spec.evaluate(&mut primary_only), 0.0);
        // Replicating everywhere eliminates read cost; fitness may be
        // positive or clamp to 0 under heavy writes, but never negative.
        let mut everywhere = BitString::from_fn(m, |_| true);
        assert!(spec.evaluate(&mut everywhere) >= 0.0);
    }

    #[test]
    fn micro_costs_agree_across_widths() {
        let (problem, _, _) = setup(15);
        let narrow = NarrowMirror::build(&problem).map(Arc::new);
        assert!(narrow.is_some(), "paper-scale instances fit in u32");
        let mut rng = StdRng::seed_from_u64(16);
        let m = problem.num_sites();
        for object in problem.objects() {
            let wide = MicroSpec::new(&problem, object);
            let narrowed = MicroSpec::new(&problem, object).with_mirror(narrow.clone());
            for _ in 0..20 {
                let mut a = BitString::random(m, &mut rng);
                a.set(wide.primary_bit, true);
                let mut b = a.clone();
                assert_eq!(
                    wide.evaluate(&mut a),
                    narrowed.evaluate(&mut b),
                    "object {object}"
                );
                assert_eq!(a, b, "reset rule must fire identically");
            }
        }
    }

    #[test]
    fn repair_capacity_respects_constraints() {
        let (problem, _, _) = setup(12);
        let n = problem.num_objects();
        // Start from an everything-everywhere chromosome (over capacity).
        let mut chromosome = BitString::from_fn(problem.num_sites() * n, |_| true);
        let weights = link_weights(&problem);
        repair_capacity(&problem, &mut chromosome, &weights);
        ensure_primary_bits(&problem, &mut chromosome);
        decode_scheme(&problem, &chromosome).expect("repair must restore validity");
    }
}
