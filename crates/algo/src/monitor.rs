//! The *monitor site* of Section 5, as a reusable component.
//!
//! The paper's deployment story: a monitor collects per-site read/write
//! statistics. At night it rebuilds the replication scheme with a full GRA
//! run; during the day it compares fresh statistics against the ones the
//! scheme was built for and, when objects drift past a threshold, lets AGRA
//! re-tune the scheme in seconds instead of re-running GRA.
//!
//! [`ReplicationMonitor`] packages that loop: it owns the current scheme,
//! the instance it was tuned for and the last GA population, and exposes
//! [`nightly_rebuild`](ReplicationMonitor::nightly_rebuild) and
//! [`ingest_statistics`](ReplicationMonitor::ingest_statistics).

use drp_core::{CoreError, Problem, ReplicationScheme, Result};
use drp_ga::BitString;
use rand::RngCore;

use crate::agra::{detect_changed_objects, Agra, AgraConfig};
use crate::encoding::encode_scheme;
use crate::gra::{Gra, GraConfig};

/// Configuration of the monitor loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// GRA settings for nightly rebuilds.
    pub gra: GraConfig,
    /// AGRA settings for daytime adaptation.
    pub agra: AgraConfig,
    /// An object adapts when its total reads or writes move by more than
    /// this percentage since the last (re)build.
    pub change_threshold_percent: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            gra: GraConfig::default(),
            agra: AgraConfig::default(),
            change_threshold_percent: 100.0,
        }
    }
}

/// What [`ReplicationMonitor::ingest_statistics`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorAction {
    /// No object drifted past the threshold; the scheme was kept.
    NoChange,
    /// AGRA re-tuned the scheme for this many drifted objects.
    Adapted {
        /// Number of objects past the threshold.
        changed_objects: usize,
        /// Replica creations + deallocations needed to realize the new
        /// scheme (Section 5's "object migration and deallocation").
        migration_moves: usize,
        /// One-off NTC of fetching the new replicas.
        migration_cost: u64,
    },
}

/// The Section 5 monitor: owns the scheme, its reference statistics and the
/// carried-over GA population.
///
/// # Examples
///
/// ```
/// use drp_algo::monitor::{MonitorConfig, ReplicationMonitor};
/// use drp_algo::GraConfig;
/// use drp_workload::{PatternChange, WorkloadSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let problem = WorkloadSpec::paper(10, 15, 5.0, 20.0).generate(&mut rng)?;
/// let config = MonitorConfig {
///     gra: GraConfig { population_size: 8, generations: 8, ..GraConfig::default() },
///     ..MonitorConfig::default()
/// };
/// let mut monitor = ReplicationMonitor::bootstrap(problem.clone(), config, &mut rng)?;
///
/// // Daytime: the pattern shifts, the monitor adapts.
/// let change = PatternChange { change_percent: 500.0, objects_percent: 30.0, read_share: 1.0 };
/// let shifted = change.apply(&problem, &mut rng)?.problem;
/// monitor.ingest_statistics(shifted, &mut rng)?;
/// assert!(monitor.problem().savings_percent(monitor.scheme()) >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReplicationMonitor {
    config: MonitorConfig,
    problem: Problem,
    scheme: ReplicationScheme,
    population: Vec<BitString>,
}

impl ReplicationMonitor {
    /// Creates a monitor by running the first nightly GRA build.
    ///
    /// # Errors
    ///
    /// Propagates GRA failures (invalid instance).
    pub fn bootstrap(
        problem: Problem,
        config: MonitorConfig,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        let run = Gra::with_config(config.gra.clone()).solve_detailed(&problem, rng)?;
        Ok(Self {
            config,
            problem,
            scheme: run.scheme,
            population: run
                .outcome
                .final_population
                .iter()
                .map(|(c, _)| c.clone())
                .collect(),
        })
    }

    /// Reassembles a monitor from externally persisted state, skipping the
    /// bootstrap GRA run — the recovery path of a durable serving runtime
    /// that checkpointed [`problem`](Self::problem), [`scheme`](Self::scheme)
    /// and [`population`](Self::population).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] when the scheme does not
    /// validate against the instance or a population chromosome has the
    /// wrong length.
    pub fn from_parts(
        problem: Problem,
        config: MonitorConfig,
        scheme: ReplicationScheme,
        population: Vec<BitString>,
    ) -> Result<Self> {
        scheme.validate(&problem)?;
        let genome = problem.num_sites() * problem.num_objects();
        if let Some(bad) = population.iter().find(|c| c.len() != genome) {
            return Err(CoreError::InvalidInstance {
                reason: format!(
                    "population chromosome has {} bits, instance needs {genome}",
                    bad.len()
                ),
            });
        }
        Ok(Self {
            config,
            problem,
            scheme,
            population,
        })
    }

    /// The statistics the current scheme was tuned for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The GA population carried between rebuilds (seeded into AGRA's
    /// transcription phase). Exposed so durable runtimes can checkpoint it.
    pub fn population(&self) -> &[BitString] {
        &self.population
    }

    /// The scheme currently realized on the network.
    pub fn scheme(&self) -> &ReplicationScheme {
        &self.scheme
    }

    /// The configuration in use.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Nightly maintenance: re-runs the full GRA against the latest
    /// statistics and replaces the scheme.
    ///
    /// # Errors
    ///
    /// Propagates GRA failures.
    pub fn nightly_rebuild(&mut self, rng: &mut dyn RngCore) -> Result<()> {
        let run = Gra::with_config(self.config.gra.clone()).solve_detailed(&self.problem, rng)?;
        self.scheme = run.scheme;
        self.population = run
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect();
        Ok(())
    }

    /// Nightly maintenance against *new* statistics: replaces the
    /// reference instance with `fresh` and re-runs the full GRA — the
    /// `drp-serve` runtime's night path, where the day's observed window
    /// is the truth the rebuild should tune for.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] when `fresh` has a different
    /// shape than the reference instance, and propagates GRA failures.
    pub fn nightly_rebuild_with(&mut self, fresh: Problem, rng: &mut dyn RngCore) -> Result<()> {
        self.check_shape(&fresh)?;
        self.problem = fresh;
        self.nightly_rebuild(rng)
    }

    fn check_shape(&self, fresh: &Problem) -> Result<()> {
        if fresh.num_sites() != self.problem.num_sites()
            || fresh.num_objects() != self.problem.num_objects()
        {
            return Err(CoreError::InvalidInstance {
                reason: "statistics shape differs from the monitored instance".into(),
            });
        }
        Ok(())
    }

    /// Daytime path: compares `fresh` statistics with the reference ones
    /// and adapts with AGRA when objects drifted past the threshold. The
    /// reference statistics are only replaced when an adaptation (or a
    /// [`nightly_rebuild`](Self::nightly_rebuild)) happens, so a slow drift
    /// that stays below the threshold per ingest still accumulates against
    /// the scheme it was actually built for and eventually triggers AGRA.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] when `fresh` has a different
    /// shape than the reference instance.
    pub fn ingest_statistics(
        &mut self,
        fresh: Problem,
        rng: &mut dyn RngCore,
    ) -> Result<MonitorAction> {
        self.check_shape(&fresh)?;
        let changed =
            detect_changed_objects(&self.problem, &fresh, self.config.change_threshold_percent);
        if changed.is_empty() {
            return Ok(MonitorAction::NoChange);
        }
        let agra = Agra::with_config(self.config.agra.clone());
        if self.population.is_empty() {
            self.population = vec![encode_scheme(&self.problem, &self.scheme)];
        }
        let outcome = agra.adapt(&fresh, &self.scheme, &self.population, &changed, rng)?;
        let plan = drp_core::migration::plan_migration(&fresh, &self.scheme, &outcome.scheme)?;
        self.scheme = outcome.scheme;
        self.population = outcome.population;
        self.problem = fresh;
        Ok(MonitorAction::Adapted {
            changed_objects: changed.len(),
            migration_moves: plan.moves(),
            migration_cost: plan.transfer_cost(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::{PatternChange, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> MonitorConfig {
        MonitorConfig {
            gra: GraConfig {
                population_size: 8,
                generations: 8,
                ..GraConfig::default()
            },
            agra: AgraConfig {
                gra: GraConfig {
                    population_size: 8,
                    generations: 8,
                    ..GraConfig::default()
                },
                ..AgraConfig::default()
            },
            change_threshold_percent: 100.0,
        }
    }

    #[test]
    fn bootstrap_produces_tuned_scheme() {
        let mut rng = StdRng::seed_from_u64(1);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let monitor = ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
        monitor.scheme().validate(&problem).unwrap();
        assert!(problem.savings_percent(monitor.scheme()) >= 0.0);
    }

    #[test]
    fn small_drift_is_ignored_large_drift_adapts() {
        let mut rng = StdRng::seed_from_u64(2);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor =
            ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();

        // Identical statistics: nothing happens.
        let action = monitor
            .ingest_statistics(problem.clone(), &mut rng)
            .unwrap();
        assert_eq!(action, MonitorAction::NoChange);

        // A large surge triggers adaptation.
        let change = PatternChange {
            change_percent: 600.0,
            objects_percent: 30.0,
            read_share: 1.0,
        };
        let shifted = change.apply(&problem, &mut rng).unwrap().problem;
        let stale = shifted.savings_percent(monitor.scheme());
        let action = monitor
            .ingest_statistics(shifted.clone(), &mut rng)
            .unwrap();
        assert!(
            matches!(action, MonitorAction::Adapted { changed_objects, .. } if changed_objects > 0)
        );
        assert!(shifted.savings_percent(monitor.scheme()) >= stale - 1e-9);
        assert_eq!(monitor.problem(), &shifted);
    }

    #[test]
    fn slow_cumulative_drift_eventually_adapts() {
        // Each ingest surges reads by 40% relative to the *previous* step —
        // always below the 100% threshold step-over-step. The reference must
        // stay pinned at the last rebuild so the drift accumulates: by the
        // third step the cumulative move is 1.4^3 - 1 ≈ 174% and AGRA fires.
        // (The old behavior re-baselined on every NoChange and never adapted.)
        let mut rng = StdRng::seed_from_u64(5);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor =
            ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
        let step = PatternChange {
            change_percent: 40.0,
            objects_percent: 100.0,
            read_share: 1.0,
        };
        let mut current = problem;
        let mut adapted = false;
        for ingest in 1..=4 {
            current = step.apply(&current, &mut rng).unwrap().problem;
            match monitor
                .ingest_statistics(current.clone(), &mut rng)
                .unwrap()
            {
                MonitorAction::NoChange => {
                    assert!(ingest < 3, "drift past 100% by step 3 must adapt");
                }
                MonitorAction::Adapted {
                    changed_objects, ..
                } => {
                    assert!(changed_objects > 0);
                    adapted = true;
                    break;
                }
            }
        }
        assert!(adapted, "cumulative sub-threshold drift never adapted");
        // After adapting, the reference is re-pinned to the fresh statistics.
        assert_eq!(monitor.problem(), &current);
    }

    #[test]
    fn nightly_rebuild_refreshes_against_current_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor =
            ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
        let change = PatternChange {
            change_percent: 600.0,
            objects_percent: 50.0,
            read_share: 0.0,
        };
        let shifted = change.apply(&problem, &mut rng).unwrap().problem;
        monitor
            .ingest_statistics(shifted.clone(), &mut rng)
            .unwrap();
        let adapted = shifted.savings_percent(monitor.scheme());
        monitor.nightly_rebuild(&mut rng).unwrap();
        let rebuilt = shifted.savings_percent(monitor.scheme());
        // The full rebuild is at least in the same league as the quick
        // adaptation (usually better; tiny GA budgets add noise).
        assert!(
            rebuilt >= adapted - 5.0,
            "rebuild {rebuilt} vs adapted {adapted}"
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let other = WorkloadSpec::paper(8, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor = ReplicationMonitor::bootstrap(problem, config(), &mut rng).unwrap();
        assert!(monitor.ingest_statistics(other, &mut rng).is_err());
    }

    #[test]
    fn object_count_mismatch_is_a_typed_error_not_a_panic() {
        // A statistics window for a different object census would trip the
        // shape assert in `detect_changed_objects` if it ever got that far;
        // the monitor must surface it as a typed error instead.
        let mut rng = StdRng::seed_from_u64(6);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let other = WorkloadSpec::paper(10, 12, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor =
            ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
        let err = monitor
            .ingest_statistics(other.clone(), &mut rng)
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidInstance { .. }), "{err}");
        let err = monitor.nightly_rebuild_with(other, &mut rng).unwrap_err();
        assert!(matches!(err, CoreError::InvalidInstance { .. }), "{err}");
        // The reference instance and scheme are untouched by the rejection.
        assert_eq!(monitor.problem(), &problem);
        monitor.scheme().validate(&problem).unwrap();
    }

    #[test]
    fn zero_traffic_window_does_not_divide_by_zero() {
        // An epoch where nothing was observed: every previously-busy object
        // "moved" by exactly -100%, so a sub-100% threshold fires AGRA on an
        // all-zero instance. The percent test must not divide by zero and
        // the adaptation path must stay finite (V'=0 and D'=0 guards).
        let mut rng = StdRng::seed_from_u64(7);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut low = config();
        low.change_threshold_percent = 50.0;
        let mut monitor = ReplicationMonitor::bootstrap(problem.clone(), low, &mut rng).unwrap();
        let m = problem.num_sites();
        let n = problem.num_objects();
        let silent = problem
            .with_patterns(
                drp_core::DenseMatrix::zeros(m, n),
                drp_core::DenseMatrix::zeros(m, n),
            )
            .unwrap();
        let action = monitor.ingest_statistics(silent.clone(), &mut rng).unwrap();
        assert!(
            matches!(action, MonitorAction::Adapted { changed_objects, .. } if changed_objects > 0)
        );
        monitor.scheme().validate(&silent).unwrap();
        assert!(silent.savings_percent(monitor.scheme()).is_finite());

        // Symmetric edge: traffic appearing on a previously-silent object.
        // The reference is now all-zero, so the percent base is clamped to 1.
        let action = monitor
            .ingest_statistics(problem.clone(), &mut rng)
            .unwrap();
        assert!(
            matches!(action, MonitorAction::Adapted { changed_objects, .. } if changed_objects > 0)
        );
        assert!(problem.savings_percent(monitor.scheme()).is_finite());
    }

    #[test]
    fn nightly_rebuild_with_repins_the_reference() {
        let mut rng = StdRng::seed_from_u64(8);
        let problem = WorkloadSpec::paper(10, 14, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        let mut monitor =
            ReplicationMonitor::bootstrap(problem.clone(), config(), &mut rng).unwrap();
        let change = PatternChange {
            change_percent: 600.0,
            objects_percent: 50.0,
            read_share: 1.0,
        };
        let shifted = change.apply(&problem, &mut rng).unwrap().problem;
        monitor
            .nightly_rebuild_with(shifted.clone(), &mut rng)
            .unwrap();
        assert_eq!(monitor.problem(), &shifted);
        monitor.scheme().validate(&shifted).unwrap();
        // Rebuilt against the shifted statistics, so identical fresh stats
        // are quiet again.
        let action = monitor.ingest_statistics(shifted, &mut rng).unwrap();
        assert_eq!(action, MonitorAction::NoChange);
    }
}
