//! ADR — the tree-network adaptive replication baseline from the paper's
//! related work (Wolfson, Jajodia & Huang, *An Adaptive Data Replication
//! Algorithm*, TODS 1997).
//!
//! ADR keeps each object's replication scheme a **connected subtree** of a
//! tree network and lets it drift with the workload through two local
//! tests, run at the scheme's fringe each period:
//!
//! * **expansion** — a neighbour `j` of the scheme joins when the reads
//!   arriving from `j`'s side of the tree outnumber the writes originating
//!   everywhere else (each such read would stop crossing the edge, each
//!   such write would start);
//! * **contraction** — a fringe replicator `i` leaves when the writes
//!   reaching it from inside the scheme outnumber the reads it serves from
//!   its own side.
//!
//! The paper dismisses ADR because "the performance of the scheme for cases
//! other than tree networks is not clear"; having it in the workspace lets
//! the reproduction quantify that: on tree topologies ADR is a competitive,
//! far cheaper alternative to GRA, and it simply does not apply to the
//! paper's complete graphs.
//!
//! Differences from the original, dictated by the DRP model: the primary
//! copy never leaves the scheme, expansion respects storage capacities, and
//! quality is judged by the paper's Eq. 4 cost (writer → primary →
//! broadcast) rather than ADR's multicast model — it is evaluated as a
//! *baseline*, not re-derived.

use drp_core::{
    CoreError, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId,
};
use drp_net::CostMatrix;
use rand::RngCore;

/// Reconstructs the tree adjacency underlying a metric, if the cost matrix
/// is a tree metric: `i ~ j` iff no third site sits on a shortest path
/// between them, and the graph so built has exactly `M − 1` edges and is
/// connected.
///
/// Returns `None` when the metric is not a tree metric (e.g. the paper's
/// complete graphs).
pub fn tree_adjacency(costs: &CostMatrix) -> Option<Vec<Vec<usize>>> {
    let m = costs.num_sites();
    let mut adjacency = vec![Vec::new(); m];
    let mut edges = 0usize;
    for i in 0..m {
        'next: for j in (i + 1)..m {
            for k in 0..m {
                if k != i && k != j && costs.cost(i, k) + costs.cost(k, j) == costs.cost(i, j) {
                    continue 'next; // k lies between i and j
                }
            }
            adjacency[i].push(j);
            adjacency[j].push(i);
            edges += 1;
        }
    }
    if edges != m.saturating_sub(1) {
        return None;
    }
    // Connectivity check (edges == m-1 plus connected ⇒ tree).
    let mut seen = vec![false; m];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for &v in &adjacency[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen.iter().all(|&s| s).then_some(adjacency)
}

/// Sum of `value(x)` over the component of the tree containing `from` when
/// the edge `(from, exclude)` is cut.
fn side_sum<F: Fn(usize) -> u64>(
    adjacency: &[Vec<usize>],
    from: usize,
    exclude: usize,
    value: &F,
) -> u64 {
    let mut total = 0;
    let mut stack = vec![(from, exclude)];
    while let Some((node, parent)) = stack.pop() {
        total += value(node);
        for &next in &adjacency[node] {
            if next != parent {
                stack.push((next, node));
            }
        }
    }
    total
}

/// The ADR baseline solver.
#[derive(Debug, Clone, Copy)]
pub struct Adr {
    /// Upper bound on expansion/contraction rounds per object (each round
    /// models one statistics period; the scheme usually stabilizes in a few).
    pub max_rounds: usize,
}

impl Default for Adr {
    fn default() -> Self {
        Self { max_rounds: 64 }
    }
}

impl Adr {
    fn place_object(
        &self,
        problem: &Problem,
        adjacency: &[Vec<usize>],
        scheme: &mut ReplicationScheme,
        object: ObjectId,
    ) -> Result<()> {
        let reads = |x: usize| problem.reads(SiteId::new(x), object);
        let writes = |x: usize| problem.writes(SiteId::new(x), object);
        let total_writes = problem.total_writes(object);
        let primary = problem.primary(object).index();

        for _ in 0..self.max_rounds {
            let mut changed = false;

            // Expansion test at every scheme/fringe boundary edge.
            let members: Vec<usize> = scheme.replicators(object).map(SiteId::index).collect();
            for &i in &members {
                for &j in &adjacency[i] {
                    if scheme.holds(SiteId::new(j), object) {
                        continue;
                    }
                    let reads_from_j = side_sum(adjacency, j, i, &reads);
                    let writes_elsewhere = total_writes - side_sum(adjacency, j, i, &writes);
                    let fits = problem.object_size(object)
                        <= scheme.free_capacity(problem, SiteId::new(j));
                    if reads_from_j > writes_elsewhere && fits {
                        scheme.add_replica(problem, SiteId::new(j), object)?;
                        changed = true;
                    }
                }
            }

            // Contraction test at the fringe (never the primary).
            let members: Vec<usize> = scheme.replicators(object).map(SiteId::index).collect();
            for &i in &members {
                if i == primary || scheme.replica_degree(object) == 1 {
                    continue;
                }
                let scheme_neighbours: Vec<usize> = adjacency[i]
                    .iter()
                    .copied()
                    .filter(|&j| scheme.holds(SiteId::new(j), object))
                    .collect();
                // Fringe = exactly one neighbour inside the (connected) scheme.
                let [j] = scheme_neighbours[..] else { continue };
                let reads_my_side = side_sum(adjacency, i, j, &reads);
                let writes_from_scheme_side = total_writes - side_sum(adjacency, i, j, &writes);
                if writes_from_scheme_side > reads_my_side {
                    scheme.remove_replica(problem, SiteId::new(i), object)?;
                    changed = true;
                }
            }

            if !changed {
                break;
            }
        }
        Ok(())
    }
}

impl ReplicationAlgorithm for Adr {
    fn name(&self) -> &str {
        "ADR"
    }

    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInstance`] when the instance's cost
    /// matrix is not a tree metric — ADR is only defined on trees.
    fn solve(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let adjacency =
            tree_adjacency(problem.costs()).ok_or_else(|| CoreError::InvalidInstance {
                reason: "ADR requires a tree network (cost matrix is not a tree metric)".into(),
            })?;
        let mut scheme = ReplicationScheme::primary_only(problem);
        for object in problem.objects() {
            self.place_object(problem, &adjacency, &mut scheme, object)?;
        }
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::{TopologyKind, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree_problem(seed: u64) -> Problem {
        let mut spec = WorkloadSpec::paper(12, 15, 5.0, 30.0);
        spec.topology = TopologyKind::Tree { arity: 2 };
        spec.generate(&mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn tree_adjacency_recovers_the_tree() {
        let p = tree_problem(1);
        let adjacency = tree_adjacency(p.costs()).unwrap();
        let edges: usize = adjacency.iter().map(Vec::len).sum::<usize>() / 2;
        assert_eq!(edges, p.num_sites() - 1);
        // Node i > 0 attaches to (i-1)/2 in the generator.
        for (i, neighbours) in adjacency.iter().enumerate().skip(1) {
            assert!(neighbours.contains(&((i - 1) / 2)), "node {i}");
        }
    }

    #[test]
    fn non_tree_metrics_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = WorkloadSpec::paper(8, 5, 5.0, 20.0)
            .generate(&mut rng)
            .unwrap();
        // Complete graphs with random costs are (almost surely) not trees.
        if tree_adjacency(p.costs()).is_none() {
            assert!(matches!(
                Adr::default().solve(&p, &mut rng),
                Err(CoreError::InvalidInstance { .. })
            ));
        }
    }

    #[test]
    fn adr_schemes_are_valid_connected_subtrees() {
        for seed in 0..4 {
            let p = tree_problem(seed);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let scheme = Adr::default().solve(&p, &mut rng).unwrap();
            scheme.validate(&p).unwrap();
            let adjacency = tree_adjacency(p.costs()).unwrap();
            // Connectivity of each object's replica set within the tree.
            for k in p.objects() {
                let members: Vec<usize> = scheme.replicators(k).map(SiteId::index).collect();
                let mut seen = vec![false; p.num_sites()];
                let mut stack = vec![members[0]];
                seen[members[0]] = true;
                while let Some(u) = stack.pop() {
                    for &v in &adjacency[u] {
                        if !seen[v] && members.contains(&v) {
                            seen[v] = true;
                            stack.push(v);
                        }
                    }
                }
                for &m in &members {
                    assert!(seen[m], "object {k}: replica set is disconnected");
                }
            }
        }
    }

    #[test]
    fn read_heavy_objects_expand_write_heavy_stay_home() {
        // Hand-built 3-node line: 0 - 1 - 2, primary at 0.
        use drp_net::CostMatrix;
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![50, 50, 50])
            .object(10, SiteId::new(0)) // read-hot everywhere
            .reads(vec![10, 20, 20])
            .writes(vec![1, 0, 0])
            .object(10, SiteId::new(0)) // write-dominated
            .reads(vec![1, 1, 1])
            .writes(vec![20, 0, 0])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let scheme = Adr::default().solve(&p, &mut rng).unwrap();
        assert!(
            scheme.replica_degree(ObjectId::new(0)) >= 2,
            "hot object should expand"
        );
        assert_eq!(
            scheme.replica_degree(ObjectId::new(1)),
            1,
            "cold object stays primary-only"
        );
        assert!(p.total_cost(&scheme) < p.d_prime());
    }

    #[test]
    fn adr_is_competitive_with_sra_on_trees() {
        // Averaged over instances, ADR should land in SRA's league on its
        // home turf (it may win or lose individual instances).
        let mut adr_total = 0.0;
        let mut primary_total = 0.0;
        for seed in 0..5 {
            let p = tree_problem(10 + seed);
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let adr = Adr::default().solve(&p, &mut rng).unwrap();
            adr_total += p.savings_percent(&adr);
            primary_total += 0.0;
        }
        assert!(
            adr_total > primary_total,
            "ADR should beat doing nothing on average"
        );
    }
}
