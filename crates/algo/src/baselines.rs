//! Baseline solvers the heuristics are compared against.
//!
//! The paper's quality metric is always relative to the primary-only
//! allocation; [`PrimaryOnly`] materializes that baseline. [`RandomFill`]
//! and [`HillClimb`] are reproduction additions that bracket the heuristics
//! from below and above: random placement shows how much of SRA/GRA's gain
//! is *search* rather than mere replication, and steepest-ascent hill
//! climbing is the natural single-solution local search to contrast with
//! GRA's population search.

use drp_core::{ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId};
use rand::{Rng, RngCore};

/// The initial allocation: no replicas beyond the primary copies.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimaryOnly;

impl ReplicationAlgorithm for PrimaryOnly {
    fn name(&self) -> &str {
        "PrimaryOnly"
    }

    fn solve(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        Ok(ReplicationScheme::primary_only(problem))
    }
}

/// Random valid placement: attempts `attempts_per_cell · M · N` uniformly
/// random `(site, object)` insertions, keeping those that fit.
///
/// With `attempts_per_cell ≈ 1` the expected fill is capacity-bound, like
/// the heuristics' solutions — but chosen blindly.
#[derive(Debug, Clone, Copy)]
pub struct RandomFill {
    /// Insertion attempts per matrix cell.
    pub attempts_per_cell: f64,
}

impl Default for RandomFill {
    fn default() -> Self {
        Self {
            attempts_per_cell: 1.0,
        }
    }
}

impl ReplicationAlgorithm for RandomFill {
    fn name(&self) -> &str {
        "RandomFill"
    }

    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let mut scheme = ReplicationScheme::primary_only(problem);
        let m = problem.num_sites();
        let n = problem.num_objects();
        let attempts = (self.attempts_per_cell * (m * n) as f64) as usize;
        for _ in 0..attempts {
            let site = SiteId::new(rng.random_range(0..m));
            let object = ObjectId::new(rng.random_range(0..n));
            if !scheme.holds(site, object)
                && problem.object_size(object) <= scheme.free_capacity(problem, site)
            {
                scheme.add_replica(problem, site, object)?;
            }
        }
        Ok(scheme)
    }
}

/// Steepest-ascent hill climbing over single replica additions and
/// removals, starting from the primary-only allocation.
///
/// Each step scans every feasible move with the exact incremental deltas
/// ([`Problem::delta_add_replica`] / [`Problem::delta_remove_replica`]) and
/// applies the best strictly-improving one; it stops at a local optimum or
/// after `max_steps`.
#[derive(Debug, Clone, Copy)]
pub struct HillClimb {
    /// Upper bound on applied moves (safety valve; local optima usually
    /// arrive much sooner).
    pub max_steps: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        Self { max_steps: 10_000 }
    }
}

impl ReplicationAlgorithm for HillClimb {
    fn name(&self) -> &str {
        "HillClimb"
    }

    fn solve(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let mut scheme = ReplicationScheme::primary_only(problem);
        // One nearest-cost buffer serves the whole move scan.
        let mut nearest = vec![0u64; problem.num_sites()];
        for _ in 0..self.max_steps {
            let mut best: Option<(i64, SiteId, ObjectId, bool)> = None;
            for k in problem.objects() {
                for i in problem.sites() {
                    if scheme.holds(i, k) {
                        if problem.primary(k) != i {
                            let delta = problem.delta_remove_replica(&scheme, i, k);
                            if delta < best.map_or(0, |(d, ..)| d) {
                                best = Some((delta, i, k, false));
                            }
                        }
                    } else if problem.object_size(k) <= scheme.free_capacity(problem, i) {
                        let delta = problem.delta_add_replica_with(&scheme, i, k, &mut nearest);
                        if delta < best.map_or(0, |(d, ..)| d) {
                            best = Some((delta, i, k, true));
                        }
                    }
                }
            }
            match best {
                Some((_, i, k, true)) => scheme.add_replica(problem, i, k)?,
                Some((_, i, k, false)) => scheme.remove_replica(problem, i, k)?,
                None => break, // local optimum
            }
        }
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(8, 10, 5.0, 20.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn primary_only_scores_zero_savings() {
        let p = problem(1);
        let mut rng = StdRng::seed_from_u64(2);
        let s = PrimaryOnly.solve(&p, &mut rng).unwrap();
        assert_eq!(p.savings_percent(&s), 0.0);
        assert_eq!(s.extra_replica_count(), 0);
    }

    #[test]
    fn random_fill_is_valid_and_nonempty() {
        let p = problem(3);
        let mut rng = StdRng::seed_from_u64(4);
        let s = RandomFill::default().solve(&p, &mut rng).unwrap();
        s.validate(&p).unwrap();
        assert!(s.extra_replica_count() > 0);
    }

    #[test]
    fn hill_climb_never_hurts_and_reaches_local_optimum() {
        let p = problem(5);
        let mut rng = StdRng::seed_from_u64(6);
        let s = HillClimb::default().solve(&p, &mut rng).unwrap();
        s.validate(&p).unwrap();
        assert!(p.total_cost(&s) <= p.d_prime());
        // Local optimality: no single move improves.
        for k in p.objects() {
            for i in p.sites() {
                if s.holds(i, k) {
                    if p.primary(k) != i {
                        assert!(p.delta_remove_replica(&s, i, k) >= 0);
                    }
                } else if p.object_size(k) <= s.free_capacity(&p, i) {
                    assert!(p.delta_add_replica(&s, i, k) >= 0);
                }
            }
        }
    }

    #[test]
    fn hill_climb_step_budget_is_respected() {
        let p = problem(7);
        let mut rng = StdRng::seed_from_u64(8);
        let s = HillClimb { max_steps: 1 }.solve(&p, &mut rng).unwrap();
        assert!(s.extra_replica_count() <= 1);
    }

    #[test]
    fn names_are_distinct() {
        let solvers: Vec<Box<dyn ReplicationAlgorithm>> = vec![
            Box::new(PrimaryOnly),
            Box::new(RandomFill::default()),
            Box::new(HillClimb::default()),
        ];
        let names: Vec<&str> = solvers.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["PrimaryOnly", "RandomFill", "HillClimb"]);
    }
}
