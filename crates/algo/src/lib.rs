//! The paper's replica-placement algorithms and the baselines they are
//! measured against.
//!
//! * [`Sra`] — the greedy *Simple Replication Algorithm* (Section 3): sites
//!   take turns replicating the object with the highest positive benefit
//!   value until no candidate remains.
//! * [`distributed`] — the paper's distributed SRA variant: a leader passes
//!   a token around; each site decides locally and broadcasts its
//!   replication so everyone updates their nearest-site tables. Runs on the
//!   `drp-net` discrete-event simulator and produces the same scheme as the
//!   centralized round-robin SRA.
//! * [`Gra`] — the *Genetic Replication Algorithm* (Section 4): an
//!   `M·N`-bit GA seeded by randomized SRA runs, with two-point crossover
//!   plus gene repair, constraint-checked mutation, stochastic-remainder
//!   selection over the enlarged `(μ+λ)` space, and periodic elitism.
//! * [`Agra`] — the *Adaptive* GRA (Section 5): per-object micro-GAs react
//!   to read/write pattern shifts, transcribe their solutions into the GRA
//!   population (repairing capacity with the Eq. 6 estimator) and optionally
//!   polish with a short "mini-GRA".
//! * [`baselines`] — primary-only, random placement and hill climbing;
//!   [`exact`] — a branch-and-bound optimum for small instances, used to
//!   measure heuristic optimality gaps.
//! * [`shard`] — the sharded hierarchical driver for `M` in the
//!   thousands: partition the network into connected clusters, solve each
//!   as a small dense sub-problem with aggregated border traffic, then
//!   reconcile and refine over sparse k-nearest cost structures.
//!
//! # Examples
//!
//! ```
//! use drp_algo::{Gra, Sra};
//! use drp_core::ReplicationAlgorithm;
//! use drp_workload::WorkloadSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let problem = WorkloadSpec::paper(8, 12, 2.0, 20.0).generate(&mut rng)?;
//! let greedy = Sra::new().solve(&problem, &mut rng)?;
//! assert!(problem.savings_percent(&greedy) >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod adr;
mod agra;
pub mod annealing;
pub mod baselines;
pub mod distributed;
mod encoding;
pub mod exact;
pub mod fault_tolerance;
mod gra;
pub mod monitor;
pub mod repair;
pub mod shard;
mod sra;

/// Newtype making `&mut dyn RngCore` usable where a sized `RngCore` is
/// required (the GA engine is generic over a sized rng).
pub(crate) struct RngAdapter<'a>(pub &'a mut dyn rand::RngCore);

impl rand::RngCore for RngAdapter<'_> {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

pub use agra::{detect_changed_objects, AdaptiveOutcome, Agra, AgraConfig};
pub use encoding::{
    chromosome_cost, chromosome_cost_with, decode_scheme, encode_scheme, EvalScratch, ScratchPool,
};
pub use gra::{
    evaluate_population, evaluate_population_pooled, CrossoverOp, Gra, GraConfig, GraRun,
};
pub use sra::{SiteOrder, Sra};
