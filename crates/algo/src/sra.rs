use drp_core::telemetry::{self, Recorder};
use drp_core::{
    CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId,
};
use rand::{Rng, RngCore};

/// How SRA picks the next site from the candidate list `LS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteOrder {
    /// The paper's algorithm: cycle through the remaining sites in index
    /// order.
    #[default]
    RoundRobin,
    /// Pick uniformly at random — used to diversify GRA's seed population
    /// (Section 4, "instead of picking up the start-up sites in a
    /// round-robin way, we do it randomly").
    Random,
}

/// The greedy *Simple Replication Algorithm* of Section 3.
///
/// Sites take turns; each computes the Eq. 5 benefit `B_k(i)` of every
/// candidate object, replicates the best strictly-positive one, and drops
/// candidates that turned non-beneficial or no longer fit. Benefits only
/// decrease as replicas appear (the nearest-replica distance is monotone
/// non-increasing and the update burden is constant), so dropped candidates
/// never need revisiting — this is what bounds the run at `O(M²N + MN²)`.
///
/// # Examples
///
/// ```
/// use drp_algo::{SiteOrder, Sra};
/// use drp_core::ReplicationAlgorithm;
/// use drp_workload::WorkloadSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let problem = WorkloadSpec::paper(10, 15, 2.0, 20.0).generate(&mut rng)?;
/// let scheme = Sra::with_order(SiteOrder::RoundRobin).solve(&problem, &mut rng)?;
/// assert!(problem.total_cost(&scheme) <= problem.d_prime());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Sra {
    order: SiteOrder,
}

impl Sra {
    /// SRA with the paper's round-robin site order.
    pub fn new() -> Self {
        Self::default()
    }

    /// SRA with an explicit site order.
    pub fn with_order(order: SiteOrder) -> Self {
        Self { order }
    }

    /// The configured site order.
    pub fn order(&self) -> SiteOrder {
        self.order
    }

    /// [`solve`](ReplicationAlgorithm::solve) with telemetry: each
    /// benefit-sweep iteration (one site's turn) closes an `sra.sweep`
    /// span, and the evaluator's flip/rescan totals land in
    /// `evaluator.flips` / `evaluator.rescans` counters. Instrumentation
    /// reads no randomness, so results are identical to `solve`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`solve`](ReplicationAlgorithm::solve).
    pub fn solve_recorded(
        &self,
        problem: &Problem,
        rng: &mut dyn RngCore,
        recorder: &dyn Recorder,
    ) -> Result<ReplicationScheme> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        // The evaluator's cached nearest-replicator costs replace the
        // hand-rolled `nearest[k][i]` arrays: every `apply_add` keeps them
        // current in O(M).
        let mut eval = CostEvaluator::primary_only(problem);

        // L(i): candidate objects per site (everything but own primaries).
        let mut lists: Vec<Vec<usize>> = (0..m)
            .map(|i| {
                (0..n)
                    .filter(|&k| !eval.scheme().holds(SiteId::new(i), ObjectId::new(k)))
                    .collect()
            })
            .collect();
        // LS: sites with a non-empty candidate list.
        let mut ls: Vec<usize> = (0..m).filter(|&i| !lists[i].is_empty()).collect();

        let mut cursor = 0usize;
        while !ls.is_empty() {
            let _sweep = telemetry::span(recorder, "sra.sweep");
            let slot = match self.order {
                SiteOrder::RoundRobin => {
                    let s = cursor % ls.len();
                    cursor = s + 1;
                    s
                }
                SiteOrder::Random => rng.random_range(0..ls.len()),
            };
            let i = ls[slot];
            let site = SiteId::new(i);
            let free = eval.scheme().free_capacity(problem, site);
            // The sweep walks objects for a fixed site, so the site-major
            // `r_x(i, ·)` / `w_x(i, ·)` rows and the cost row `C(i, ·)` are
            // the contiguous ones — hoist them out of the retain closure.
            let r_row = problem.read_matrix().row(i);
            let w_row = problem.write_matrix().row(i);
            let c_row = problem.costs().row(i);

            // One pass: find the best positive benefit that fits and prune
            // candidates that are dead (non-positive benefit or oversize).
            let mut best: Option<(i64, usize)> = None;
            lists[i].retain(|&k| {
                let object = ObjectId::new(k);
                let size = problem.object_size(object);
                if size > free {
                    return false;
                }
                let c_sp = c_row[problem.primary(object).index()];
                let benefit = r_row[k] as i64 * eval.nearest_cost(site, object) as i64
                    + (w_row[k] as i64 - problem.total_writes(object) as i64) * c_sp as i64;
                if benefit <= 0 {
                    return false;
                }
                if best.is_none_or(|(b, _)| benefit > b) {
                    best = Some((benefit, k));
                }
                true
            });

            if let Some((_, k)) = best {
                let object = ObjectId::new(k);
                // apply_add refreshes every site's nearest cost in one pass.
                eval.apply_add(site, object)?;
                lists[i].retain(|&x| x != k);
            }
            if lists[i].is_empty() {
                // Keep the round-robin cursor aligned after removal.
                let removed_before = cursor > slot;
                ls.remove(slot);
                if removed_before && cursor > 0 {
                    cursor -= 1;
                }
            }
        }
        if recorder.enabled() {
            recorder.add_counter("evaluator.flips", eval.flips());
            recorder.add_counter("evaluator.rescans", eval.rescans());
        }
        Ok(eval.into_scheme())
    }
}

impl ReplicationAlgorithm for Sra {
    fn name(&self) -> &str {
        "SRA"
    }

    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        self.solve_recorded(problem, rng, &telemetry::NoopRecorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn never_worse_than_primary_only() {
        let mut r = rng();
        for seed in 0..5 {
            let p = WorkloadSpec::paper(12, 20, 5.0, 15.0)
                .generate(&mut StdRng::seed_from_u64(seed))
                .unwrap();
            let s = Sra::new().solve(&p, &mut r).unwrap();
            assert!(p.total_cost(&s) <= p.d_prime(), "seed {seed}");
            s.validate(&p).unwrap();
        }
    }

    #[test]
    fn replicates_the_obviously_beneficial_object() {
        // Site 1 reads object 0 heavily, no writes anywhere: SRA must
        // replicate it there.
        let costs = CostMatrix::from_rows(2, vec![0, 5, 5, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![50, 50])
            .object(10, SiteId::new(0))
            .reads(vec![0, 30])
            .build()
            .unwrap();
        let s = Sra::new().solve(&p, &mut rng()).unwrap();
        assert!(s.holds(SiteId::new(1), ObjectId::new(0)));
        assert_eq!(p.total_cost(&s), 0);
    }

    #[test]
    fn skips_update_dominated_objects() {
        // Updates dwarf reads: benefit is negative everywhere, no replicas.
        let costs = CostMatrix::from_rows(2, vec![0, 5, 5, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![100, 100])
            .object(10, SiteId::new(0))
            .reads(vec![0, 2])
            .writes(vec![20, 20])
            .build()
            .unwrap();
        let s = Sra::new().solve(&p, &mut rng()).unwrap();
        assert_eq!(s.extra_replica_count(), 0);
    }

    #[test]
    fn respects_capacity() {
        // Site 1 can hold only one of the two attractive objects.
        let costs = CostMatrix::from_rows(2, vec![0, 5, 5, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![50, 10])
            .object(10, SiteId::new(0))
            .reads(vec![0, 30])
            .object(10, SiteId::new(0))
            .reads(vec![0, 10])
            .build()
            .unwrap();
        let s = Sra::new().solve(&p, &mut rng()).unwrap();
        // The higher-benefit object 0 wins the single slot.
        assert!(s.holds(SiteId::new(1), ObjectId::new(0)));
        assert!(!s.holds(SiteId::new(1), ObjectId::new(1)));
    }

    #[test]
    fn greedy_picks_highest_benefit_first() {
        // Two objects fit, but the order of replication is by benefit; both
        // end up replicated when capacity allows.
        let costs = CostMatrix::from_rows(2, vec![0, 5, 5, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![50, 20])
            .object(10, SiteId::new(0))
            .reads(vec![0, 30])
            .object(10, SiteId::new(0))
            .reads(vec![0, 10])
            .build()
            .unwrap();
        let s = Sra::new().solve(&p, &mut rng()).unwrap();
        assert_eq!(s.extra_replica_count(), 2);
        assert_eq!(p.total_cost(&s), 0);
    }

    #[test]
    fn round_robin_is_deterministic() {
        let p = WorkloadSpec::paper(10, 15, 5.0, 15.0)
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        let a = Sra::new().solve(&p, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = Sra::new().solve(&p, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_eq!(a, b, "round-robin SRA must not consume randomness");
    }

    #[test]
    fn random_order_varies_but_stays_valid() {
        let p = WorkloadSpec::paper(10, 15, 5.0, 15.0)
            .generate(&mut StdRng::seed_from_u64(10))
            .unwrap();
        let mut r = rng();
        for _ in 0..5 {
            let s = Sra::with_order(SiteOrder::Random)
                .solve(&p, &mut r)
                .unwrap();
            s.validate(&p).unwrap();
            assert!(p.total_cost(&s) <= p.d_prime());
        }
    }

    #[test]
    fn recorded_solve_matches_plain_solve_and_counts_sweeps() {
        use drp_core::telemetry::InMemoryRecorder;

        let p = WorkloadSpec::paper(10, 15, 5.0, 15.0)
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        let plain = Sra::new().solve(&p, &mut StdRng::seed_from_u64(1)).unwrap();
        let recorder = InMemoryRecorder::new();
        let recorded = Sra::new()
            .solve_recorded(&p, &mut StdRng::seed_from_u64(1), &recorder)
            .unwrap();
        assert_eq!(plain, recorded, "recording must not perturb the result");
        assert!(recorder.span_count("sra.sweep") > 0);
        // Every extra replica is one evaluator flip.
        assert_eq!(
            recorder.counter("evaluator.flips"),
            recorded.extra_replica_count() as u64
        );
    }

    #[test]
    fn zero_capacity_slack_yields_primary_only() {
        // Capacities exactly fit the primaries: no replica can be added.
        let costs = CostMatrix::from_rows(2, vec![0, 5, 5, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 10])
            .object(10, SiteId::new(0))
            .reads(vec![0, 30])
            .object(10, SiteId::new(1))
            .reads(vec![30, 0])
            .build()
            .unwrap();
        let s = Sra::new().solve(&p, &mut rng()).unwrap();
        assert_eq!(s.extra_replica_count(), 0);
    }
}
