//! Chromosome encoding shared by GRA and AGRA.
//!
//! A chromosome has `M` genes of `N` bits each (the paper's layout): bit
//! `i·N + k` is `X_ik`. Keeping genes contiguous makes the crossover
//! validity repair (per-gene capacity check) a local slice operation.

use std::sync::{Arc, Mutex};

use drp_core::{CoreError, NarrowMirror, ObjectId, Problem, ReplicationScheme, Result, SiteId};
use drp_ga::BitString;

/// Encodes a replication scheme into the site-major chromosome layout.
pub fn encode_scheme(problem: &Problem, scheme: &ReplicationScheme) -> BitString {
    let n = problem.num_objects();
    BitString::from_fn(problem.num_sites() * n, |bit| {
        scheme.holds(SiteId::new(bit / n), ObjectId::new(bit % n))
    })
}

/// Decodes a chromosome into a [`ReplicationScheme`], validating the
/// capacity constraint and re-adding primary copies regardless of their bit.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientCapacity`] if a gene overfills its site,
/// or [`CoreError::InvalidInstance`] on a length mismatch.
pub fn decode_scheme(problem: &Problem, chromosome: &BitString) -> Result<ReplicationScheme> {
    let n = problem.num_objects();
    if chromosome.len() != problem.num_sites() * n {
        return Err(CoreError::InvalidInstance {
            reason: format!(
                "chromosome of {} bits for a {}x{} instance",
                chromosome.len(),
                problem.num_sites(),
                n
            ),
        });
    }
    ReplicationScheme::from_fn(problem, |site, object| {
        chromosome.get(site.index() * n + object.index())
    })
}

/// Reusable buffers for [`chromosome_cost_with`]: per-object replica
/// buckets (counting-sort style counts/offsets plus a flat site array), a
/// spare replica list for primary splicing, and a nearest-cost array, all
/// sized for one instance. One scratch per worker thread keeps the GA
/// fitness path allocation-free.
#[derive(Debug, Clone)]
pub struct EvalScratch {
    /// Cursor array of the bucket fill; after the fill, `counts[k]` is the
    /// end offset of object `k`'s bucket.
    counts: Vec<usize>,
    /// Start offset of each object's bucket in `sites` (length `n + 1`).
    offsets: Vec<usize>,
    /// Flat bucket storage: the replicator sites of object `k`, ascending,
    /// at `sites[offsets[k]..offsets[k + 1]]`.
    sites: Vec<usize>,
    replicas: Vec<usize>,
    nearest: Vec<u64>,
    /// Narrow nearest-cost scratch, used when `narrow` is present.
    nearest32: Vec<u32>,
    /// Shared `u32` mirror of the instance's hot rows, when every value
    /// fits 32 bits; `None` keeps the `u64` kernel path (identical
    /// results, more memory traffic).
    narrow: Option<Arc<NarrowMirror>>,
}

impl EvalScratch {
    /// Buffers sized for `problem`, including the `u32` fast-path mirror
    /// when the instance narrows (built fresh — prefer
    /// [`ScratchPool`] / [`Self::with_mirror`] to share one mirror
    /// across many scratches).
    pub fn new(problem: &Problem) -> Self {
        Self::with_mirror(problem, NarrowMirror::build(problem).map(Arc::new))
    }

    /// Buffers sized for `problem`, sharing a prebuilt narrow mirror
    /// (pass `None` to force the `u64` path).
    pub fn with_mirror(problem: &Problem, narrow: Option<Arc<NarrowMirror>>) -> Self {
        let m = problem.num_sites();
        let n = problem.num_objects();
        Self {
            counts: vec![0; n],
            offsets: vec![0; n + 1],
            sites: Vec::new(),
            replicas: Vec::with_capacity(m),
            nearest: vec![0; m],
            nearest32: vec![0; m],
            narrow,
        }
    }
}

/// A checkout/restore arena of [`EvalScratch`] buffers for one instance.
///
/// The batched fitness paths hand the
/// [`WorkerPool`](drp_core::pool::WorkerPool) one contiguous chromosome
/// chunk per worker per generation; each task checks a scratch out,
/// scores its chunk, and restores it, so in steady state **no**
/// allocation happens per generation — the same buffers (and the same
/// shared [`NarrowMirror`]) cycle for the whole GA run. Scratch contents
/// never influence results (every buffer is overwritten before use), so
/// reuse cannot perturb a seeded run.
///
/// One pool serves one problem: buffers are sized at construction.
#[derive(Debug)]
pub struct ScratchPool {
    narrow: Option<Arc<NarrowMirror>>,
    free: Mutex<Vec<EvalScratch>>,
}

impl ScratchPool {
    /// An empty pool for `problem`, building the shared narrow mirror
    /// once (O(M² + N·M) — amortized over every evaluation of the run).
    pub fn new(problem: &Problem) -> Self {
        Self {
            narrow: NarrowMirror::build(problem).map(Arc::new),
            free: Mutex::new(Vec::new()),
        }
    }

    /// An empty pool that never narrows: every checkout scores through
    /// the u64 kernels. This is the pre-mirror code path, kept callable
    /// so benchmarks can measure the narrow kernels against it.
    pub fn wide(_problem: &Problem) -> Self {
        Self {
            narrow: None,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Takes a free scratch, or sizes a fresh one for `problem` (which
    /// must be the instance the pool was built for).
    pub fn checkout(&self, problem: &Problem) -> EvalScratch {
        if let Some(scratch) = self.free.lock().expect("scratch pool poisoned").pop() {
            return scratch;
        }
        EvalScratch::with_mirror(problem, self.narrow.clone())
    }

    /// Returns a scratch to the pool for reuse.
    pub fn restore(&self, scratch: EvalScratch) {
        self.free
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }
}

/// The Eq. 4 total NTC of a chromosome, computed directly from the bits
/// without materializing a scheme (GRA's hot path).
///
/// Objects whose replica set is exactly their primary fall back to the
/// precomputed `V_prime`, which is the common case in sparse chromosomes.
///
/// # Panics
///
/// Panics if the chromosome length mismatches the instance.
pub fn chromosome_cost(problem: &Problem, chromosome: &BitString) -> u64 {
    chromosome_cost_with(problem, chromosome, &mut EvalScratch::new(problem))
}

/// [`chromosome_cost`] against caller-owned scratch buffers — zero
/// allocations per call, the form the batched/parallel fitness paths use.
///
/// # Panics
///
/// Panics if the chromosome length or scratch size mismatches the instance.
pub fn chromosome_cost_with(
    problem: &Problem,
    chromosome: &BitString,
    scratch: &mut EvalScratch,
) -> u64 {
    let m = problem.num_sites();
    let n = problem.num_objects();
    assert_eq!(chromosome.len(), m * n, "chromosome length mismatch");

    // Bucket the set bits by object with a two-pass counting sort over
    // `iter_ones()`: sparse chromosomes then cost O(ones) word-scans
    // instead of the M·N strided `get(i·n + k)` probes of the naive loop.
    // Bits arrive in ascending site-major order, so each object's bucket
    // comes out already sorted by site.
    scratch.counts.fill(0);
    let mut total_ones = 0usize;
    for one in chromosome.iter_ones() {
        scratch.counts[one % n] += 1;
        total_ones += 1;
    }
    let mut acc = 0usize;
    for k in 0..n {
        scratch.offsets[k] = acc;
        acc += scratch.counts[k];
        // Reuse `counts` as the fill cursor of pass two.
        scratch.counts[k] = scratch.offsets[k];
    }
    scratch.offsets[n] = acc;
    scratch.sites.resize(total_ones, 0);
    for one in chromosome.iter_ones() {
        let (i, k) = (one / n, one % n);
        scratch.sites[scratch.counts[k]] = i;
        scratch.counts[k] += 1;
    }

    let mut total = 0u64;
    for k in 0..n {
        let object = ObjectId::new(k);
        let sp = problem.primary(object).index();
        let bucket = &scratch.sites[scratch.offsets[k]..scratch.offsets[k + 1]];
        // Primary copies are undeletable; tolerate chromosomes that lost the
        // bit by splicing the primary into its sorted slot.
        let sp_at = bucket.partition_point(|&j| j < sp);
        let replicas: &[usize] = if bucket.get(sp_at) == Some(&sp) {
            bucket
        } else {
            scratch.replicas.clear();
            scratch.replicas.extend_from_slice(&bucket[..sp_at]);
            scratch.replicas.push(sp);
            scratch.replicas.extend_from_slice(&bucket[sp_at..]);
            &scratch.replicas
        };
        if replicas.len() == 1 {
            total += problem.v_prime(object);
            continue;
        }
        // The u32 SoA mirror halves the row traffic of the min/traffic
        // scans; products widen to u64 before accumulation, so both
        // branches produce the same integer.
        total += match &scratch.narrow {
            Some(narrow) => {
                narrow.object_cost_from_replicas(problem, object, replicas, &mut scratch.nearest32)
            }
            None => problem.object_cost_from_replicas(object, replicas, &mut scratch.nearest),
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(8, 10, 5.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let p = problem(1);
        let mut scheme = ReplicationScheme::primary_only(&p);
        // Any feasible non-primary placement works for the round trip.
        let object = ObjectId::new(2);
        let site = p
            .sites()
            .find(|&i| {
                !scheme.holds(i, object) && p.object_size(object) <= scheme.free_capacity(&p, i)
            })
            .expect("some site has room");
        scheme.add_replica(&p, site, object).unwrap();
        let bits = encode_scheme(&p, &scheme);
        let back = decode_scheme(&p, &bits).unwrap();
        assert_eq!(back, scheme);
    }

    #[test]
    fn decode_restores_missing_primaries() {
        let p = problem(2);
        let bits = BitString::zeros(p.num_sites() * p.num_objects());
        let scheme = decode_scheme(&p, &bits).unwrap();
        assert_eq!(scheme, ReplicationScheme::primary_only(&p));
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let p = problem(3);
        assert!(decode_scheme(&p, &BitString::zeros(7)).is_err());
    }

    #[test]
    fn chromosome_cost_matches_scheme_cost() {
        let p = problem(4);
        let mut rng = StdRng::seed_from_u64(5);
        // Build several random valid schemes and compare both cost paths.
        for round in 0..10 {
            let scheme = random_scheme(&p, &mut rng);
            let bits = encode_scheme(&p, &scheme);
            assert_eq!(
                chromosome_cost(&p, &bits),
                p.total_cost(&scheme),
                "round {round}"
            );
        }
    }

    #[test]
    fn narrow_and_wide_scratch_agree_bitwise() {
        let p = problem(7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut wide = EvalScratch::with_mirror(&p, None);
        let mut narrow = EvalScratch::new(&p);
        assert!(narrow.narrow.is_some(), "paper instances narrow to u32");
        for round in 0..10 {
            let scheme = random_scheme(&p, &mut rng);
            let bits = encode_scheme(&p, &scheme);
            assert_eq!(
                chromosome_cost_with(&p, &bits, &mut narrow),
                chromosome_cost_with(&p, &bits, &mut wide),
                "round {round}"
            );
        }
    }

    #[test]
    fn scratch_pool_cycles_buffers() {
        let p = problem(9);
        let pool = ScratchPool::new(&p);
        let a = pool.checkout(&p);
        let b = pool.checkout(&p);
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.free.lock().unwrap().len(), 2);
        let _c = pool.checkout(&p);
        assert_eq!(pool.free.lock().unwrap().len(), 1, "checkout reuses");
        // A pooled scratch scores identically to a fresh one.
        let bits = encode_scheme(&p, &ReplicationScheme::primary_only(&p));
        let mut pooled = pool.checkout(&p);
        assert_eq!(
            chromosome_cost_with(&p, &bits, &mut pooled),
            chromosome_cost(&p, &bits)
        );
    }

    #[test]
    fn chromosome_cost_primary_only_is_d_prime() {
        let p = problem(6);
        let bits = encode_scheme(&p, &ReplicationScheme::primary_only(&p));
        assert_eq!(chromosome_cost(&p, &bits), p.d_prime());
    }

    fn random_scheme(p: &Problem, rng: &mut StdRng) -> ReplicationScheme {
        use rand::Rng;
        let mut s = ReplicationScheme::primary_only(p);
        for _ in 0..p.num_sites() * p.num_objects() / 3 {
            let site = SiteId::new(rng.random_range(0..p.num_sites()));
            let object = ObjectId::new(rng.random_range(0..p.num_objects()));
            if !s.holds(site, object) {
                let _ = s.add_replica(p, site, object);
            }
        }
        s
    }
}
