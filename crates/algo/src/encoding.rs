//! Chromosome encoding shared by GRA and AGRA.
//!
//! A chromosome has `M` genes of `N` bits each (the paper's layout): bit
//! `i·N + k` is `X_ik`. Keeping genes contiguous makes the crossover
//! validity repair (per-gene capacity check) a local slice operation.

use drp_core::{CoreError, ObjectId, Problem, ReplicationScheme, Result, SiteId};
use drp_ga::BitString;

/// Encodes a replication scheme into the site-major chromosome layout.
pub fn encode_scheme(problem: &Problem, scheme: &ReplicationScheme) -> BitString {
    let n = problem.num_objects();
    BitString::from_fn(problem.num_sites() * n, |bit| {
        scheme.holds(SiteId::new(bit / n), ObjectId::new(bit % n))
    })
}

/// Decodes a chromosome into a [`ReplicationScheme`], validating the
/// capacity constraint and re-adding primary copies regardless of their bit.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientCapacity`] if a gene overfills its site,
/// or [`CoreError::InvalidInstance`] on a length mismatch.
pub fn decode_scheme(problem: &Problem, chromosome: &BitString) -> Result<ReplicationScheme> {
    let n = problem.num_objects();
    if chromosome.len() != problem.num_sites() * n {
        return Err(CoreError::InvalidInstance {
            reason: format!(
                "chromosome of {} bits for a {}x{} instance",
                chromosome.len(),
                problem.num_sites(),
                n
            ),
        });
    }
    ReplicationScheme::from_fn(problem, |site, object| {
        chromosome.get(site.index() * n + object.index())
    })
}

/// The Eq. 4 total NTC of a chromosome, computed directly from the bits
/// without materializing a scheme (GRA's hot path).
///
/// Objects whose replica set is exactly their primary fall back to the
/// precomputed `V_prime`, which is the common case in sparse chromosomes.
///
/// # Panics
///
/// Panics if the chromosome length mismatches the instance.
pub fn chromosome_cost(problem: &Problem, chromosome: &BitString) -> u64 {
    let m = problem.num_sites();
    let n = problem.num_objects();
    assert_eq!(chromosome.len(), m * n, "chromosome length mismatch");

    let mut total = 0u64;
    let mut replicas: Vec<usize> = Vec::with_capacity(m);
    let mut nearest: Vec<u64> = vec![0; m];
    for k in 0..n {
        let object = ObjectId::new(k);
        let sp = problem.primary(object).index();
        replicas.clear();
        for i in 0..m {
            if chromosome.get(i * n + k) {
                replicas.push(i);
            }
        }
        // Primary copies are undeletable; tolerate chromosomes that lost the
        // bit by treating the primary as always present.
        if !replicas.contains(&sp) {
            replicas.push(sp);
        }
        if replicas.len() == 1 {
            total += problem.v_prime(object);
            continue;
        }

        let o = problem.object_size(object);
        let w_tot = problem.total_writes(object);
        let sp_row = problem.costs().row(sp);

        nearest.iter_mut().for_each(|c| *c = u64::MAX);
        let mut broadcast = 0u64;
        for &j in &replicas {
            broadcast += sp_row[j];
            let row = problem.costs().row(j);
            for (i, slot) in nearest.iter_mut().enumerate() {
                if row[i] < *slot {
                    *slot = row[i];
                }
            }
        }
        let mut cost = w_tot * o * broadcast;
        for i in 0..m {
            // Replicators (primary included) pay only the broadcast above.
            if i == sp || chromosome.get(i * n + k) {
                continue;
            }
            let site = SiteId::new(i);
            cost += o
                * (problem.reads(site, object) * nearest[i]
                    + problem.writes(site, object) * sp_row[i]);
        }
        total += cost;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(8, 10, 5.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let p = problem(1);
        let mut scheme = ReplicationScheme::primary_only(&p);
        // Any feasible non-primary placement works for the round trip.
        let object = ObjectId::new(2);
        let site = p
            .sites()
            .find(|&i| {
                !scheme.holds(i, object) && p.object_size(object) <= scheme.free_capacity(&p, i)
            })
            .expect("some site has room");
        scheme.add_replica(&p, site, object).unwrap();
        let bits = encode_scheme(&p, &scheme);
        let back = decode_scheme(&p, &bits).unwrap();
        assert_eq!(back, scheme);
    }

    #[test]
    fn decode_restores_missing_primaries() {
        let p = problem(2);
        let bits = BitString::zeros(p.num_sites() * p.num_objects());
        let scheme = decode_scheme(&p, &bits).unwrap();
        assert_eq!(scheme, ReplicationScheme::primary_only(&p));
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let p = problem(3);
        assert!(decode_scheme(&p, &BitString::zeros(7)).is_err());
    }

    #[test]
    fn chromosome_cost_matches_scheme_cost() {
        let p = problem(4);
        let mut rng = StdRng::seed_from_u64(5);
        // Build several random valid schemes and compare both cost paths.
        for round in 0..10 {
            let scheme = random_scheme(&p, &mut rng);
            let bits = encode_scheme(&p, &scheme);
            assert_eq!(
                chromosome_cost(&p, &bits),
                p.total_cost(&scheme),
                "round {round}"
            );
        }
    }

    #[test]
    fn chromosome_cost_primary_only_is_d_prime() {
        let p = problem(6);
        let bits = encode_scheme(&p, &ReplicationScheme::primary_only(&p));
        assert_eq!(chromosome_cost(&p, &bits), p.d_prime());
    }

    fn random_scheme(p: &Problem, rng: &mut StdRng) -> ReplicationScheme {
        use rand::Rng;
        let mut s = ReplicationScheme::primary_only(p);
        for _ in 0..p.num_sites() * p.num_objects() / 3 {
            let site = SiteId::new(rng.random_range(0..p.num_sites()));
            let object = ObjectId::new(rng.random_range(0..p.num_objects()));
            if !s.holds(site, object) {
                let _ = s.add_replica(p, site, object);
            }
        }
        s
    }
}
