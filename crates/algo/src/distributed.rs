//! The distributed variant of SRA (Section 3).
//!
//! The paper sketches it as: candidate lists `L(i)` live on their sites, the
//! list-of-sites `LS` on a network leader; site selection is done by the
//! leader, followed by a token-passing mechanism; each replication is
//! broadcast so every site can update its nearest-site (`SN`) field.
//!
//! This module runs the protocol on the `drp-net` discrete-event simulator:
//!
//! 1. the leader passes the **token** to the next site of `LS` (round
//!    robin);
//! 2. the token holder evaluates its candidates *locally* (it only needs its
//!    own nearest-replica distances and the instance constants), replicates
//!    the best positive-benefit object and reports the **decision** — or
//!    returns the token if it has no candidate left;
//! 3. the leader broadcasts the decision; every site updates its `SN` table
//!    and **acks**; the new replicator also *fetches the object data* from
//!    its previously nearest holder (the only non-control traffic);
//! 4. once all acks arrive the leader advances the token. When `LS` empties
//!    the protocol terminates.
//!
//! The ack barrier makes the decision sequence identical to the centralized
//! round-robin [`Sra`](crate::Sra), which the tests assert; the price is
//! protocol latency, which the returned [`TrafficStats`] quantifies.

use std::sync::{Arc, Mutex};

use drp_core::{ObjectId, Problem, ReplicationScheme, Result, SiteId};
use drp_net::sim::{Context, Message, Node, Simulator, TrafficStats};

/// Protocol messages. All are control (size 0) except `ObjectData`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SraMsg {
    /// Leader → site: your turn to replicate.
    Token,
    /// Site → leader: nothing (left) to replicate; drop me from LS if
    /// `exhausted`.
    TokenBack { exhausted: bool },
    /// Site → leader: I replicate `object`; drop me from LS if `exhausted`.
    Decision { object: usize, exhausted: bool },
    /// Leader → everyone else: `site` now replicates `object`.
    Update { site: usize, object: usize },
    /// Site → leader: update applied.
    Ack,
    /// New replicator → previous nearest holder: send me the object.
    Fetch { object: usize },
    /// Holder → new replicator: the object data (size `o_k`).
    ObjectData { object: usize },
}

struct SharedState {
    problem: Problem,
    /// Decisions in commit order, recorded by the leader.
    decisions: Mutex<Vec<(usize, usize)>>,
}

/// Leader bookkeeping (only populated on site 0).
struct LeaderState {
    /// Sites still holding candidates, in round-robin order.
    ls: Vec<usize>,
    cursor: usize,
    token_at: usize,
    awaiting_acks: usize,
    pending_removal: bool,
}

struct SraNode {
    shared: Arc<SharedState>,
    /// C(self, SN_k(self)) per object.
    nearest: Vec<u64>,
    /// Objects this site holds.
    holds: Vec<bool>,
    /// Candidate objects (paper's `L(i)`).
    candidates: Vec<usize>,
    free: u64,
    leader: Option<LeaderState>,
}

impl SraNode {
    fn new(shared: Arc<SharedState>, id: usize, is_leader: bool) -> Self {
        let problem = &shared.problem;
        let site = SiteId::new(id);
        let n = problem.num_objects();
        let scheme = ReplicationScheme::primary_only(problem);
        let nearest: Vec<u64> = (0..n)
            .map(|k| {
                problem
                    .costs()
                    .cost(id, problem.primary(ObjectId::new(k)).index())
            })
            .collect();
        let holds: Vec<bool> = (0..n)
            .map(|k| problem.primary(ObjectId::new(k)) == site)
            .collect();
        let candidates: Vec<usize> = (0..n).filter(|&k| !holds[k]).collect();
        let free = scheme.free_capacity(problem, site);
        let leader = is_leader.then(|| LeaderState {
            ls: (0..problem.num_sites())
                .filter(|&i| {
                    // A site starts in LS iff it has any non-primary object.
                    (0..n).any(|k| problem.primary(ObjectId::new(k)).index() != i)
                })
                .collect(),
            cursor: 0,
            token_at: 0,
            awaiting_acks: 0,
            pending_removal: false,
        });
        Self {
            shared: Arc::clone(&shared),
            nearest,
            holds,
            candidates,
            free,
            leader,
        }
    }

    /// Leader only: hand the token to the next site in LS.
    fn advance_token(&mut self, ctx: &mut Context<'_, SraMsg>) {
        let Some(leader) = self.leader.as_mut() else {
            return;
        };
        if leader.pending_removal {
            let slot = leader
                .ls
                .iter()
                .position(|&s| s == leader.token_at)
                .expect("token holder must be in LS");
            leader.ls.remove(slot);
            if leader.cursor > slot {
                leader.cursor -= 1;
            }
            leader.pending_removal = false;
        }
        if leader.ls.is_empty() {
            return; // protocol complete; the event queue drains
        }
        let slot = leader.cursor % leader.ls.len();
        leader.cursor = slot + 1;
        leader.token_at = leader.ls[slot];
        let target = leader.token_at;
        ctx.send(target, 0, SraMsg::Token);
    }

    /// Evaluate candidates exactly like centralized SRA's inner loop.
    fn local_step(&mut self, ctx: &mut Context<'_, SraMsg>) {
        let problem = &self.shared.problem;
        let me = ctx.node_id();
        let site = SiteId::new(me);
        let free = self.free;
        let nearest = &self.nearest;

        let mut best: Option<(i64, usize)> = None;
        self.candidates.retain(|&k| {
            let object = ObjectId::new(k);
            if problem.object_size(object) > free {
                return false;
            }
            let c_sp = problem.costs().cost(me, problem.primary(object).index());
            let benefit = problem.reads(site, object) as i64 * nearest[k] as i64
                + (problem.writes(site, object) as i64 - problem.total_writes(object) as i64)
                    * c_sp as i64;
            if benefit <= 0 {
                return false;
            }
            if best.is_none_or(|(b, _)| benefit > b) {
                best = Some((benefit, k));
            }
            true
        });

        match best {
            Some((_, k)) => {
                let object = ObjectId::new(k);
                // Fetch the data from the (pre-update) nearest holder.
                let (sn, c) = self.nearest_holder(me, k);
                if c > 0 {
                    ctx.send(sn, 0, SraMsg::Fetch { object: k });
                }
                // Apply locally.
                self.holds[k] = true;
                self.free -= self.shared.problem.object_size(object);
                self.nearest[k] = 0;
                self.candidates.retain(|&x| x != k);
                let exhausted = self.candidates.is_empty();
                ctx.send(
                    0,
                    0,
                    SraMsg::Decision {
                        object: k,
                        exhausted,
                    },
                );
            }
            None => {
                ctx.send(
                    0,
                    0,
                    SraMsg::TokenBack {
                        exhausted: self.candidates.is_empty(),
                    },
                );
            }
        }
    }

    /// The site this node would read `object` from (its `SN` field). Only
    /// the distance is tracked; the identity is reconstructed from the
    /// decision log plus primaries, which the leader's barrier keeps
    /// consistent.
    fn nearest_holder(&self, me: usize, object: usize) -> (usize, u64) {
        let problem = &self.shared.problem;
        let k = ObjectId::new(object);
        let mut best = (problem.primary(k).index(), u64::MAX);
        // Primary plus every committed replicator.
        let decisions = self.shared.decisions.lock().expect("decision log poisoned");
        let holders = std::iter::once(problem.primary(k).index()).chain(
            decisions
                .iter()
                .filter(|(_, obj)| *obj == object)
                .map(|(s, _)| *s),
        );
        for holder in holders {
            let c = problem.costs().cost(me, holder);
            if c < best.1 {
                best = (holder, c);
            }
        }
        best
    }
}

impl Node<SraMsg> for SraNode {
    fn on_start(&mut self, ctx: &mut Context<'_, SraMsg>) {
        if self.leader.is_some() {
            self.advance_token(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, SraMsg>, msg: Message<SraMsg>) {
        let me = ctx.node_id();
        match msg.payload {
            SraMsg::Token => self.local_step(ctx),
            SraMsg::TokenBack { exhausted } => {
                let leader = self.leader.as_mut().expect("token returned to non-leader");
                leader.pending_removal = exhausted;
                self.advance_token(ctx);
            }
            SraMsg::Decision { object, exhausted } => {
                let problem = &self.shared.problem;
                let m = problem.num_sites();
                self.shared
                    .decisions
                    .lock()
                    .expect("decision log poisoned")
                    .push((msg.src, object));
                {
                    let leader = self.leader.as_mut().expect("decision sent to non-leader");
                    leader.pending_removal = exhausted;
                    leader.awaiting_acks = m - 1;
                }
                // Broadcast to everyone but the decider (the leader includes
                // itself via a self-message so all updates flow uniformly).
                for site in (0..m).filter(|&s| s != msg.src) {
                    ctx.send(
                        site,
                        0,
                        SraMsg::Update {
                            site: msg.src,
                            object,
                        },
                    );
                }
                if self.leader.as_ref().is_some_and(|l| l.awaiting_acks == 0) {
                    self.advance_token(ctx);
                }
            }
            SraMsg::Update { site, object } => {
                let c = self.shared.problem.costs().cost(me, site);
                if c < self.nearest[object] {
                    self.nearest[object] = c;
                }
                ctx.send(0, 0, SraMsg::Ack);
            }
            SraMsg::Ack => {
                let leader = self.leader.as_mut().expect("ack sent to non-leader");
                leader.awaiting_acks -= 1;
                if leader.awaiting_acks == 0 {
                    self.advance_token(ctx);
                }
            }
            SraMsg::Fetch { object } => {
                let size = self.shared.problem.object_size(ObjectId::new(object));
                ctx.send(msg.src, size, SraMsg::ObjectData { object });
            }
            SraMsg::ObjectData { .. } => {}
        }
    }
}

/// Outcome of the distributed protocol.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The scheme the network converged to.
    pub scheme: ReplicationScheme,
    /// Traffic accounting: `transfer_cost` is the object-migration NTC, and
    /// `messages` counts the control traffic (tokens, decisions, updates,
    /// acks) the centralized algorithm does not pay.
    pub stats: TrafficStats,
    /// Simulated time at which the protocol finished.
    pub completion_time: u64,
}

/// Runs distributed SRA with site 0 as the leader.
///
/// # Errors
///
/// Propagates simulator errors (an exceeded event budget would indicate a
/// protocol bug).
///
/// # Examples
///
/// ```
/// use drp_algo::distributed::distributed_sra;
/// use drp_workload::WorkloadSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(6);
/// let problem = WorkloadSpec::paper(6, 8, 5.0, 20.0).generate(&mut rng)?;
/// let run = distributed_sra(&problem)?;
/// assert!(problem.total_cost(&run.scheme) <= problem.d_prime());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn distributed_sra(problem: &Problem) -> Result<DistributedRun> {
    let shared = Arc::new(SharedState {
        problem: problem.clone(),
        decisions: Mutex::new(Vec::new()),
    });
    let nodes: Vec<Box<dyn Node<SraMsg>>> = (0..problem.num_sites())
        .map(|id| Box::new(SraNode::new(Arc::clone(&shared), id, id == 0)) as Box<dyn Node<SraMsg>>)
        .collect();
    let mut sim = Simulator::new(problem.costs(), nodes)?;
    sim.run_to_completion()?;

    let decisions = shared
        .decisions
        .lock()
        .expect("decision log poisoned")
        .clone();
    let mut scheme = ReplicationScheme::primary_only(problem);
    for (site, object) in decisions {
        scheme.add_replica(problem, SiteId::new(site), ObjectId::new(object))?;
    }
    Ok(DistributedRun {
        scheme,
        stats: sim.stats(),
        completion_time: sim.now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sra;
    use drp_core::ReplicationAlgorithm;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_centralized_round_robin_sra() {
        for seed in 0..6 {
            let p = WorkloadSpec::paper(8, 12, 5.0, 20.0)
                .generate(&mut StdRng::seed_from_u64(seed))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let centralized = Sra::new().solve(&p, &mut rng).unwrap();
            let run = distributed_sra(&p).unwrap();
            assert_eq!(
                run.scheme, centralized,
                "seed {seed}: distributed and centralized SRA diverged"
            );
        }
    }

    #[test]
    fn migration_traffic_matches_replica_fetches() {
        let p = WorkloadSpec::paper(6, 8, 2.0, 20.0)
            .generate(&mut StdRng::seed_from_u64(9))
            .unwrap();
        let run = distributed_sra(&p).unwrap();
        // Every created replica was fetched once; data traffic is the only
        // non-zero-size flow, so it must be positive iff replicas exist.
        if run.scheme.extra_replica_count() > 0 {
            assert!(run.stats.transfer_cost > 0);
        }
        assert!(run.stats.messages > 0);
        assert!(run.completion_time > 0);
    }

    #[test]
    fn protocol_terminates_on_update_heavy_instances() {
        // Nothing is worth replicating: the token must still cycle through
        // every site exactly once and stop.
        let p = WorkloadSpec::paper(5, 5, 500.0, 50.0)
            .generate(&mut StdRng::seed_from_u64(10))
            .unwrap();
        let run = distributed_sra(&p).unwrap();
        assert_eq!(run.scheme.extra_replica_count(), 0);
        assert_eq!(run.stats.transfer_cost, 0);
    }

    #[test]
    fn single_site_network_is_a_noop() {
        use drp_core::Problem;
        use drp_net::CostMatrix;
        let costs = CostMatrix::from_rows(1, vec![0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![100])
            .object(5, SiteId::new(0))
            .build()
            .unwrap();
        let run = distributed_sra(&p).unwrap();
        assert_eq!(run.scheme.extra_replica_count(), 0);
    }
}
