//! Self-healing replica access under injected faults.
//!
//! [`run_faulted`] drives a replication scheme through a seeded
//! [`FaultPlan`] on the `drp-net` simulator with three layers of defence,
//! and reports what the faults actually cost clients as a
//! [`DegradationReport`]:
//!
//! 1. **Retrying reads** — a read goes to the nearest replicator
//!    `SN_k(i)`; on timeout it retries with exponential backoff, failing
//!    over to the *second*-nearest replicator and then round-robin through
//!    the rest by distance. The nearest/second-nearest lookups reuse
//!    [`CostEvaluator`]'s cached top-2 arrays — the directory every site
//!    consults is the same structure the optimizers flip.
//! 2. **Queueing writes** — a write ships to the primary `SP_k`; while the
//!    primary is down the writer keeps the write queued and drains it with
//!    backed-off retries after recovery. Commits are versioned, and the
//!    primary's update broadcast carries the version so replicas know how
//!    current they are.
//! 3. **Background repair** — a coordinator (the first site the plan never
//!    crashes) wakes every `repair_interval`, and for every object whose
//!    *live* replica degree fell below the `min_degree` floor re-replicates
//!    greedily by the paper's benefit `B_k(i)` onto the best live sites
//!    with room, shipping the object from the nearest live, most current
//!    replica. The same sweep re-syncs stale survivors (anti-entropy), so
//!    recovered replicas catch up even if no further write touches them.
//!
//! # Model notes
//!
//! * Sites are fail-stop with durable storage: a crashed site loses
//!   in-flight messages, timers and pending client requests, but keeps its
//!   replicas (at their old versions) and rejoins silently on recovery.
//! * The coordinator uses the simulator's liveness oracle
//!   ([`Context::is_up`]) — a perfect failure detector standing in for the
//!   timeout-based detector a deployment would run. Client code never uses
//!   the oracle; it relies on timeouts alone.
//! * A re-replication target registers in the directory immediately and
//!   may serve reads while its copy is still in flight (warm-start
//!   simplification); until the fetch lands it reports version 0 and such
//!   reads count as stale.
//! * Everything — fault schedule, workload interleaving, retry jitter-free
//!   backoff — is deterministic, so two runs with the same plan produce
//!   bitwise-identical traffic matrices and reports.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use drp_core::telemetry::{self, Recorder};
use drp_core::{
    CoreError, CostEvaluator, DegradationReport, ObjectId, Problem, ReplicationScheme, Result,
    SiteId,
};
use drp_net::sim::{
    Context, FaultPlan, FaultStats, Message, Node, Simulator, Time, TrafficMatrix, TrafficStats,
};

/// Tuning knobs for the fault-injected run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairConfig {
    /// Degree floor the repair loop restores (clamped to the site count).
    pub min_degree: usize,
    /// Clients spread their reads/writes over `[1, horizon]`.
    pub horizon: Time,
    /// Initial request timeout; backoff doubles it per attempt.
    pub rpc_timeout: Time,
    /// Backoff ceiling per retry interval.
    pub backoff_cap: Time,
    /// Attempts per request before it counts as lost.
    pub max_attempts: u32,
    /// Period of the repair coordinator's sweep.
    pub repair_interval: Time,
    /// Cap on simulated reads per `(site, object)` pair (the paper's
    /// counts go up to 40 per pair; replaying a few keeps runs small
    /// while exercising every path).
    pub reads_per_pair: u64,
    /// Cap on simulated writes per `(site, object)` pair.
    pub writes_per_pair: u64,
    /// Retries and repair stop at this instant; `None` derives
    /// `max(horizon, last fault transition) + 2 · (backoff_cap +
    /// repair_interval)`, late enough to drain queued writes after the
    /// last recovery.
    pub deadline: Option<Time>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            min_degree: 2,
            horizon: 1_000,
            rpc_timeout: 16,
            backoff_cap: 64,
            max_attempts: 24,
            repair_interval: 50,
            reads_per_pair: 3,
            writes_per_pair: 2,
            deadline: None,
        }
    }
}

/// Everything a fault-injected run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedRun {
    /// Client-observed degradation and repair accounting.
    pub report: DegradationReport,
    /// The scheme after repair (replicas are only ever added).
    pub scheme: ReplicationScheme,
    /// Aggregate simulator traffic counters.
    pub stats: TrafficStats,
    /// What the fault injector did.
    pub fault_stats: FaultStats,
    /// Per-site-pair traffic, bitwise reproducible per plan.
    pub traffic: TrafficMatrix,
    /// Events the simulator dispatched.
    pub events: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum RepairMsg {
    // -- timers --
    /// Client-side: issue one read of `object`.
    IssueRead { object: usize },
    /// Client-side: issue one write of `object`.
    IssueWrite { object: usize },
    /// Client-side: a pending read may have timed out.
    ReadTimeout { req: u64 },
    /// Client-side: a pending write may have timed out.
    WriteTimeout { req: u64 },
    /// Coordinator: run one repair/resync sweep.
    RepairTick,
    // -- messages --
    /// Read request to a replicator (control).
    ReadReq { req: u64, object: usize },
    /// Object data answering a read; `stale` if the server lagged the
    /// committed version when it served.
    ReadData {
        req: u64,
        object: usize,
        stale: bool,
    },
    /// Write shipped toward the primary (object-sized from
    /// non-replicators, control-sized from replicators, as in Eq. 4).
    WriteReq { req: u64, object: usize },
    /// Primary's acknowledgement (control).
    WriteAck { req: u64 },
    /// Versioned update broadcast from the primary to one replicator.
    Update { object: usize, version: u64 },
    /// Coordinator's instruction: fetch `object` from `from` (control).
    Replicate { object: usize, from: usize },
    /// Fetch request to the designated source (control).
    FetchReq { object: usize },
    /// The object copy answering a fetch, at the source's version.
    FetchData { object: usize, version: u64 },
}

/// Versions, staleness intervals and the report under construction.
struct Ledger {
    report: DegradationReport,
    /// Committed version per object (bumped at the primary).
    version: Vec<u64>,
    /// Version held at `site * N + object` (0 until first update).
    replica_version: Vec<u64>,
    /// Open staleness interval start per `site * N + object`.
    stale_since: Vec<Option<Time>>,
    /// In-flight repair/resync fetch per `site * N + object`: when it was
    /// requested, so the coordinator can re-issue expired ones.
    fetch_pending: Vec<Option<Time>>,
    /// Last instant the sweep found every object at the floor again.
    restored_at: Option<Time>,
}

struct Shared<'p> {
    problem: &'p Problem,
    config: RepairConfig,
    deadline: Time,
    /// Live replica directory; the repair loop grows it via `apply_add`,
    /// keeping the cached nearest/second-nearest arrays warm for readers.
    directory: Mutex<CostEvaluator<'p>>,
    ledger: Mutex<Ledger>,
    recorder: Arc<dyn Recorder>,
}

struct PendingReq {
    object: usize,
    attempt: u32,
}

struct SiteActor<'p> {
    shared: Arc<Shared<'p>>,
    is_coordinator: bool,
    pending_reads: HashMap<u64, PendingReq>,
    pending_writes: HashMap<u64, PendingReq>,
    next_req: u64,
    /// Swallows duplicate tick chains after crash/recover re-arming.
    next_tick_min: Time,
}

impl<'p> SiteActor<'p> {
    fn new(shared: Arc<Shared<'p>>, me: usize, is_coordinator: bool) -> Self {
        Self {
            shared,
            is_coordinator,
            pending_reads: HashMap::new(),
            pending_writes: HashMap::new(),
            next_req: (me as u64) << 32,
            next_tick_min: 0,
        }
    }

    fn fresh_req(&mut self) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        r
    }

    /// Commit one write at the primary: bump the version, broadcast the
    /// update, and mark replicas the oracle already knows will miss it.
    fn commit_write(&self, ctx: &mut Context<'_, RepairMsg>, object: usize) {
        let shared = &self.shared;
        let k = ObjectId::new(object);
        let me = ctx.node_id();
        let n = shared.problem.num_objects();
        let size = shared.problem.object_size(k);
        let directory = shared.directory.lock().expect("directory poisoned");
        let mut ledger = shared.ledger.lock().expect("ledger poisoned");
        ledger.version[object] += 1;
        let version = ledger.version[object];
        ledger.replica_version[me * n + object] = version;
        let targets: Vec<usize> = directory
            .scheme()
            .replicators(k)
            .map(SiteId::index)
            .filter(|&j| j != me)
            .collect();
        for j in targets {
            ctx.send(j, size, RepairMsg::Update { object, version });
            // Metrics-only oracle peek: a broadcast to a down replica is
            // transmitted and lost, opening a staleness window now.
            if !ctx.is_up(j) && ledger.stale_since[j * n + object].is_none() {
                ledger.stale_since[j * n + object] = Some(ctx.now());
            }
        }
    }

    /// Replicators of `object` visible to `me`, except `me`, sorted by
    /// `(C(me, j), j)` — the failover ladder for retries beyond the
    /// evaluator's cached top-2.
    fn failover_ladder(&self, me: usize, object: usize) -> Vec<usize> {
        let shared = &self.shared;
        let k = ObjectId::new(object);
        let directory = shared.directory.lock().expect("directory poisoned");
        let mut ladder: Vec<usize> = directory
            .scheme()
            .replicators(k)
            .map(SiteId::index)
            .filter(|&j| j != me)
            .collect();
        ladder.sort_by_key(|&j| (shared.problem.costs().cost(me, j), j));
        ladder
    }

    /// Next read target for `attempt`, straight from the evaluator's
    /// cached nearest/second-nearest for the first two tries.
    fn read_target(&self, me: usize, object: usize, attempt: u32) -> usize {
        let shared = &self.shared;
        let k = ObjectId::new(object);
        let i = SiteId::new(me);
        let directory = shared.directory.lock().expect("directory poisoned");
        let (nearest, _) = directory.nearest(i, k);
        match attempt {
            0 => nearest.index(),
            1 => directory
                .second_nearest(i, k)
                .map_or(nearest.index(), |(s, _)| s.index()),
            _ => {
                drop(directory);
                let ladder = self.failover_ladder(me, object);
                if ladder.is_empty() {
                    nearest.index()
                } else {
                    ladder[attempt as usize % ladder.len()]
                }
            }
        }
    }

    /// Serve a read locally (free, Eq. 4's zero-cost case), counting
    /// staleness against the committed version.
    fn serve_local_read(&self, ctx: &Context<'_, RepairMsg>, object: usize, degraded: bool) {
        let shared = &self.shared;
        let n = shared.problem.num_objects();
        let me = ctx.node_id();
        let mut ledger = shared.ledger.lock().expect("ledger poisoned");
        if degraded {
            ledger.report.reads_degraded += 1;
        } else {
            ledger.report.reads_local += 1;
        }
        if ledger.replica_version[me * n + object] < ledger.version[object] {
            ledger.report.reads_stale += 1;
        }
    }

    fn backoff(&self, attempt: u32) -> Time {
        let base = self.shared.config.rpc_timeout;
        base.saturating_mul(1 << attempt.min(16))
            .min(self.shared.config.backoff_cap)
    }

    fn issue_read(&mut self, ctx: &mut Context<'_, RepairMsg>, object: usize) {
        let me = ctx.node_id();
        {
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.report.reads_total += 1;
        }
        let target = self.read_target(me, object, 0);
        if target == me {
            self.serve_local_read(ctx, object, false);
            return;
        }
        let req = self.fresh_req();
        self.pending_reads
            .insert(req, PendingReq { object, attempt: 0 });
        ctx.send(target, 0, RepairMsg::ReadReq { req, object });
        ctx.set_timer(self.backoff(0), RepairMsg::ReadTimeout { req });
    }

    fn issue_write(&mut self, ctx: &mut Context<'_, RepairMsg>, object: usize) {
        let me = ctx.node_id();
        {
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.report.writes_total += 1;
        }
        let k = ObjectId::new(object);
        let primary = self.shared.problem.primary(k).index();
        if primary == me {
            self.commit_write(ctx, object);
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.report.writes_first_try += 1;
            return;
        }
        let req = self.fresh_req();
        self.pending_writes
            .insert(req, PendingReq { object, attempt: 0 });
        self.ship_write(ctx, object, req);
        ctx.set_timer(self.backoff(0), RepairMsg::WriteTimeout { req });
    }

    fn ship_write(&self, ctx: &mut Context<'_, RepairMsg>, object: usize, req: u64) {
        let shared = &self.shared;
        let k = ObjectId::new(object);
        let me = ctx.node_id();
        let primary = shared.problem.primary(k).index();
        let holds = {
            let directory = shared.directory.lock().expect("directory poisoned");
            directory.scheme().holds(SiteId::new(me), k)
        };
        // A replicator already receives the broadcast over the same path,
        // so its shipment is control-sized (the replay convention).
        let size = if holds {
            0
        } else {
            shared.problem.object_size(k)
        };
        ctx.send(primary, size, RepairMsg::WriteReq { req, object });
    }

    fn read_timed_out(&mut self, ctx: &mut Context<'_, RepairMsg>, req: u64) {
        let Some(pending) = self.pending_reads.get_mut(&req) else {
            return; // answered (or abandoned) before the timer fired
        };
        let give_up = ctx.now() >= self.shared.deadline
            || pending.attempt + 1 >= self.shared.config.max_attempts;
        if give_up {
            self.pending_reads.remove(&req);
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.report.reads_lost += 1;
            return;
        }
        pending.attempt += 1;
        let (object, attempt) = (pending.object, pending.attempt);
        let me = ctx.node_id();
        let target = self.read_target(me, object, attempt);
        if target == me {
            // Repair put a replica here since the read was issued.
            self.pending_reads.remove(&req);
            self.serve_local_read(ctx, object, true);
            return;
        }
        ctx.send(target, 0, RepairMsg::ReadReq { req, object });
        ctx.set_timer(self.backoff(attempt), RepairMsg::ReadTimeout { req });
    }

    fn write_timed_out(&mut self, ctx: &mut Context<'_, RepairMsg>, req: u64) {
        let Some(pending) = self.pending_writes.get_mut(&req) else {
            return;
        };
        let give_up = ctx.now() >= self.shared.deadline
            || pending.attempt + 1 >= self.shared.config.max_attempts;
        if give_up {
            self.pending_writes.remove(&req);
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.report.writes_lost += 1;
            return;
        }
        pending.attempt += 1;
        let (object, attempt) = (pending.object, pending.attempt);
        {
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            if attempt == 1 {
                ledger.report.writes_queued += 1;
            }
            ledger.report.write_retries += 1;
        }
        self.ship_write(ctx, object, req);
        ctx.set_timer(self.backoff(attempt), RepairMsg::WriteTimeout { req });
    }

    /// One coordinator sweep: re-replicate every object below its live
    /// floor (greedily by benefit under capacity) and re-issue fetches for
    /// stale or expired replicas.
    fn repair_sweep(&mut self, ctx: &mut Context<'_, RepairMsg>) {
        let shared = Arc::clone(&self.shared);
        let _span = telemetry::span(shared.recorder.as_ref(), "repair.sweep");
        let problem = shared.problem;
        let n = problem.num_objects();
        let now = ctx.now();
        let floor = shared.config.min_degree.min(problem.num_sites());
        let fetch_expiry = 2 * shared.config.repair_interval;
        let mut directory = shared.directory.lock().expect("directory poisoned");
        let mut ledger = shared.ledger.lock().expect("ledger poisoned");

        let mut any_below_floor = false;
        for k in problem.objects() {
            let object = k.index();
            let live: Vec<usize> = directory
                .scheme()
                .replicators(k)
                .map(SiteId::index)
                .filter(|&j| ctx.is_up(j))
                .collect();
            let live_degree = live.len();

            // Choose the fetch source once per object: live, most current,
            // ties to the lowest id. (Per-target distance matters less
            // than currency here.)
            let source = live
                .iter()
                .copied()
                .max_by_key(|&j| (ledger.replica_version[j * n + object], std::cmp::Reverse(j)))
                .map(|j| (j, ledger.replica_version[j * n + object]));

            if live_degree < floor {
                any_below_floor = true;
                if ledger.report.first_degradation_at.is_none() {
                    ledger.report.first_degradation_at = Some(now);
                }
                ledger.restored_at = None;
                let Some((source_site, source_version)) = source else {
                    // Every replica is down: nothing to copy from. The
                    // object stays degraded until a holder recovers.
                    continue;
                };
                // Benefit-greedy candidates: live sites with room, best
                // B_k(i) first, ties to the lowest id.
                let mut candidates: Vec<(i64, usize)> = problem
                    .sites()
                    .filter(|&i| {
                        ctx.is_up(i.index())
                            && !directory.scheme().holds(i, k)
                            && problem.object_size(k)
                                <= directory.scheme().free_capacity(problem, i)
                    })
                    .map(|i| (problem.local_benefit(directory.scheme(), i, k), i.index()))
                    .collect();
                candidates.sort_by_key(|&(b, i)| (std::cmp::Reverse(b), i));
                for &(_, target) in candidates.iter().take(floor - live_degree) {
                    directory
                        .apply_add(SiteId::new(target), k)
                        .expect("candidate was pre-filtered for capacity");
                    ledger.report.repair_replicas_created += 1;
                    if ledger.version[object] > ledger.replica_version[target * n + object]
                        && ledger.stale_since[target * n + object].is_none()
                    {
                        ledger.stale_since[target * n + object] = Some(now);
                    }
                    ledger.fetch_pending[target * n + object] = Some(now);
                    ctx.send(
                        target,
                        0,
                        RepairMsg::Replicate {
                            object,
                            from: source_site,
                        },
                    );
                    let _ = source_version;
                }
            }

            // Anti-entropy: nudge live, stale replicas to refetch; clear
            // fetch flags for down targets (their fetch chain died) and
            // re-issue expired ones (the source died or the copy dropped).
            if let Some((source_site, source_version)) = source {
                for j in 0..problem.num_sites() {
                    let slot = j * n + object;
                    if !directory.scheme().holds(SiteId::new(j), k) {
                        continue;
                    }
                    if !ctx.is_up(j) {
                        ledger.fetch_pending[slot] = None;
                        continue;
                    }
                    if j == source_site || source_version <= ledger.replica_version[slot] {
                        continue;
                    }
                    let refetch = match ledger.fetch_pending[slot] {
                        None => true,
                        Some(sent) => now >= sent + fetch_expiry,
                    };
                    if refetch {
                        ledger.fetch_pending[slot] = Some(now);
                        ctx.send(
                            j,
                            0,
                            RepairMsg::Replicate {
                                object,
                                from: source_site,
                            },
                        );
                    }
                }
            }
        }

        if !any_below_floor
            && ledger.report.first_degradation_at.is_some()
            && ledger.restored_at.is_none()
        {
            ledger.restored_at = Some(now);
        }
    }
}

impl Node<RepairMsg> for SiteActor<'_> {
    fn on_start(&mut self, ctx: &mut Context<'_, RepairMsg>) {
        let shared = Arc::clone(&self.shared);
        let problem = shared.problem;
        let me = SiteId::new(ctx.node_id());
        let horizon = shared.config.horizon;
        // Deterministic per-pair phase so sites do not fire in lockstep.
        let phase = (ctx.node_id() as u64 * 7 + 3) % 11;
        for k in problem.objects() {
            let object = k.index();
            let reads = problem.reads(me, k).min(shared.config.reads_per_pair);
            for j in 0..reads {
                let at = 1 + phase + (j + object as u64) % 7 + j * horizon / reads.max(1);
                ctx.set_timer(at.min(horizon), RepairMsg::IssueRead { object });
            }
            let writes = problem.writes(me, k).min(shared.config.writes_per_pair);
            for j in 0..writes {
                let at = 3
                    + phase
                    + (j + object as u64) % 5
                    + (2 * j + 1) * horizon / (2 * writes.max(1));
                ctx.set_timer(at.min(horizon), RepairMsg::IssueWrite { object });
            }
        }
        if self.is_coordinator {
            ctx.set_timer(shared.config.repair_interval, RepairMsg::RepairTick);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, RepairMsg>, payload: RepairMsg) {
        match payload {
            RepairMsg::IssueRead { object } => self.issue_read(ctx, object),
            RepairMsg::IssueWrite { object } => self.issue_write(ctx, object),
            RepairMsg::ReadTimeout { req } => self.read_timed_out(ctx, req),
            RepairMsg::WriteTimeout { req } => self.write_timed_out(ctx, req),
            RepairMsg::RepairTick => {
                if ctx.now() < self.next_tick_min {
                    return; // duplicate chain from a recovery re-arm
                }
                self.next_tick_min = ctx.now() + 1;
                self.repair_sweep(ctx);
                if ctx.now() < self.shared.deadline {
                    ctx.set_timer(self.shared.config.repair_interval, RepairMsg::RepairTick);
                }
            }
            _ => unreachable!("network payload delivered as a timer"),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RepairMsg>, msg: Message<RepairMsg>) {
        let shared = Arc::clone(&self.shared);
        let n = shared.problem.num_objects();
        let me = ctx.node_id();
        match msg.payload {
            RepairMsg::ReadReq { req, object } => {
                let size = shared.problem.object_size(ObjectId::new(object));
                let stale = {
                    let ledger = shared.ledger.lock().expect("ledger poisoned");
                    ledger.replica_version[me * n + object] < ledger.version[object]
                };
                ctx.send(msg.src, size, RepairMsg::ReadData { req, object, stale });
            }
            RepairMsg::ReadData { req, stale, .. } => {
                if let Some(pending) = self.pending_reads.remove(&req) {
                    let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                    if pending.attempt == 0 {
                        ledger.report.reads_remote += 1;
                    } else {
                        ledger.report.reads_degraded += 1;
                    }
                    if stale {
                        ledger.report.reads_stale += 1;
                    }
                }
            }
            RepairMsg::WriteReq { req, object } => {
                debug_assert_eq!(
                    shared.problem.primary(ObjectId::new(object)).index(),
                    me,
                    "write shipped to a non-primary site"
                );
                self.commit_write(ctx, object);
                ctx.send(msg.src, 0, RepairMsg::WriteAck { req });
            }
            RepairMsg::WriteAck { req } => {
                if let Some(pending) = self.pending_writes.remove(&req) {
                    let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                    if pending.attempt == 0 {
                        ledger.report.writes_first_try += 1;
                    } else {
                        ledger.report.writes_recovered += 1;
                    }
                }
            }
            RepairMsg::Update { object, version } => {
                let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                let slot = me * n + object;
                if version > ledger.replica_version[slot] {
                    ledger.replica_version[slot] = version;
                }
                if ledger.replica_version[slot] >= ledger.version[object] {
                    if let Some(since) = ledger.stale_since[slot].take() {
                        ledger.report.stale_window += ctx.now() - since;
                    }
                }
            }
            RepairMsg::Replicate { object, from } => {
                ctx.send(from, 0, RepairMsg::FetchReq { object });
            }
            RepairMsg::FetchReq { object } => {
                let k = ObjectId::new(object);
                let size = shared.problem.object_size(k);
                let version = {
                    let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                    // Repair/resync shipments are the repair traffic.
                    ledger.report.repair_traffic += size * shared.problem.costs().cost(me, msg.src);
                    ledger.replica_version[me * n + object]
                };
                ctx.send(msg.src, size, RepairMsg::FetchData { object, version });
            }
            RepairMsg::FetchData { object, version } => {
                let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                let slot = me * n + object;
                ledger.fetch_pending[slot] = None;
                if version > ledger.replica_version[slot] {
                    ledger.replica_version[slot] = version;
                }
                if ledger.replica_version[slot] >= ledger.version[object] {
                    if let Some(since) = ledger.stale_since[slot].take() {
                        ledger.report.stale_window += ctx.now() - since;
                    }
                }
            }
            _ => unreachable!("timer payload arrived as a message"),
        }
    }

    fn on_crash(&mut self, _ctx: &mut Context<'_, RepairMsg>) {
        // Volatile state is lost with the site; replicas stay on disk.
        let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
        ledger.report.reads_abandoned += self.pending_reads.len() as u64;
        ledger.report.writes_abandoned += self.pending_writes.len() as u64;
        self.pending_reads.clear();
        self.pending_writes.clear();
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, RepairMsg>) {
        // The sweep chain died with the crash (its timer was discarded);
        // the coordinator re-arms it. Recovered replicas are caught up by
        // the sweep's anti-entropy pass, not by the node itself.
        if self.is_coordinator && ctx.now() < self.shared.deadline {
            ctx.set_timer(1, RepairMsg::RepairTick);
        }
    }
}

/// Runs `scheme` through `plan` with retrying clients and the repair loop,
/// returning the degradation accounting. `plan = None` runs the identical
/// workload with the injector disarmed (the baseline for overhead and
/// regression comparisons).
///
/// The coordinator is the first site the plan never crashes (site 0 when
/// every site crashes at some point — sweeps are then lost while it is
/// down and resume on recovery).
///
/// # Errors
///
/// Returns an error if the scheme does not validate against the problem,
/// if the configuration is degenerate (zero timeout/interval/attempts), or
/// if the simulation exceeds its event budget.
pub fn run_faulted(
    problem: &Problem,
    scheme: &ReplicationScheme,
    plan: Option<FaultPlan>,
    config: RepairConfig,
) -> Result<FaultedRun> {
    run_faulted_recorded(problem, scheme, plan, config, telemetry::noop())
}

/// [`run_faulted`] with telemetry: each coordinator sweep closes a
/// `repair.sweep` span, the simulator publishes its `sim.*` / `fault.*`
/// counters (see
/// [`Simulator::set_recorder`](drp_net::sim::Simulator::set_recorder)),
/// and the replica directory's flip/rescan totals land in
/// `evaluator.flips` / `evaluator.rescans`. Recording changes nothing:
/// the run stays bitwise identical per plan.
///
/// # Errors
///
/// Same failure modes as [`run_faulted`].
pub fn run_faulted_recorded(
    problem: &Problem,
    scheme: &ReplicationScheme,
    plan: Option<FaultPlan>,
    config: RepairConfig,
    recorder: Arc<dyn Recorder>,
) -> Result<FaultedRun> {
    scheme.validate(problem)?;
    if config.rpc_timeout == 0
        || config.repair_interval == 0
        || config.max_attempts == 0
        || config.min_degree == 0
    {
        return Err(CoreError::InvalidInstance {
            reason: "repair config must have nonzero timeout, interval, attempts and degree".into(),
        });
    }
    let m = problem.num_sites();
    let n = problem.num_objects();
    let last_transition = plan.as_ref().map_or(0, FaultPlan::last_transition);
    let deadline = config.deadline.unwrap_or_else(|| {
        config.horizon.max(last_transition) + 2 * (config.backoff_cap + config.repair_interval)
    });
    let coordinator = (0..m)
        .find(|&i| {
            plan.as_ref()
                .is_none_or(|p| p.crash_windows().iter().all(|w| w.site != i))
        })
        .unwrap_or(0);

    let shared = Arc::new(Shared {
        problem,
        config,
        deadline,
        directory: Mutex::new(CostEvaluator::new(problem, scheme.clone())),
        ledger: Mutex::new(Ledger {
            report: DegradationReport::default(),
            version: vec![0; n],
            replica_version: vec![0; m * n],
            stale_since: vec![None; m * n],
            fetch_pending: vec![None; m * n],
            restored_at: None,
        }),
        recorder: Arc::clone(&recorder),
    });

    let nodes: Vec<Box<dyn Node<RepairMsg> + '_>> = (0..m)
        .map(|i| {
            Box::new(SiteActor::new(Arc::clone(&shared), i, i == coordinator))
                as Box<dyn Node<RepairMsg> + '_>
        })
        .collect();
    let mut sim = Simulator::new(problem.costs(), nodes)?;
    sim.set_recorder(Arc::clone(&recorder));
    if let Some(plan) = plan {
        sim.set_fault_plan(plan);
    }
    sim.run_to_completion()?;

    let stats = sim.stats();
    let fault_stats = sim.fault_stats();
    let traffic = sim.traffic().clone();
    let events = sim.events_processed();
    let completion = sim.now();
    drop(sim);

    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| unreachable!("all node references died with the simulator"));
    let directory = shared.directory.into_inner().expect("directory poisoned");
    let mut ledger = shared.ledger.into_inner().expect("ledger poisoned");
    if recorder.enabled() {
        recorder.add_counter("evaluator.flips", directory.flips());
        recorder.add_counter("evaluator.rescans", directory.rescans());
    }

    // Close open staleness windows at quiescence.
    let final_scheme = directory.into_scheme();
    for k in problem.objects() {
        for i in problem.sites() {
            let slot = i.index() * n + k.index();
            if final_scheme.holds(i, k) {
                if let Some(since) = ledger.stale_since[slot].take() {
                    ledger.report.stale_window += completion - since;
                }
            }
        }
    }
    let floor = shared.config.min_degree.min(m);
    ledger.report.min_degree_unmet = problem
        .objects()
        .filter(|&k| final_scheme.replica_degree(k) < floor)
        .count() as u64;
    ledger.report.completion_time = completion;
    ledger.report.time_to_restored_degree = match ledger.report.first_degradation_at {
        None => 0,
        Some(first) => ledger
            .restored_at
            .unwrap_or(completion)
            .saturating_sub(first),
    };

    Ok(FaultedRun {
        report: ledger.report,
        scheme: final_scheme,
        stats,
        fault_stats,
        traffic,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_net::CostMatrix;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    /// Hand-built 4-site line network, rand-free so expectations transfer
    /// across environments.
    fn problem() -> Problem {
        let costs =
            CostMatrix::from_rows(4, vec![0, 1, 2, 3, 1, 0, 1, 2, 2, 1, 0, 1, 3, 2, 1, 0]).unwrap();
        Problem::builder(costs)
            .capacities(vec![30, 30, 30, 30])
            .object(5, SiteId::new(0))
            .reads(vec![0, 4, 6, 2])
            .writes(vec![2, 0, 1, 0])
            .object(3, SiteId::new(3))
            .reads(vec![3, 1, 0, 0])
            .writes(vec![0, 1, 0, 1])
            .build()
            .unwrap()
    }

    fn scheme_with_degree_2(p: &Problem) -> ReplicationScheme {
        let mut s = ReplicationScheme::primary_only(p);
        crate::fault_tolerance::ensure_min_degree(p, &mut s, 2).unwrap();
        s
    }

    #[test]
    fn fault_free_run_serves_everything_cleanly() -> TestResult {
        let p = problem();
        let s = scheme_with_degree_2(&p);
        let run = run_faulted(&p, &s, None, RepairConfig::default())?;
        let r = &run.report;
        assert!(r.reads_balanced(), "{r}");
        assert!(r.writes_balanced(), "{r}");
        assert!(r.reads_total > 0 && r.writes_total > 0);
        assert_eq!(r.reads_degraded, 0);
        assert_eq!(r.reads_lost + r.reads_abandoned, 0);
        assert_eq!(r.writes_lost + r.writes_abandoned, 0);
        assert_eq!(r.repair_replicas_created, 0);
        assert_eq!(r.first_degradation_at, None);
        assert_eq!(run.fault_stats, drp_net::sim::FaultStats::default());
        Ok(())
    }

    #[test]
    fn crash_degrades_then_repair_restores_the_floor() -> TestResult {
        let p = problem();
        let s = scheme_with_degree_2(&p);
        // Crash one replica-holding site for a long stretch.
        let victim = s
            .replicators(ObjectId::new(0))
            .map(SiteId::index)
            .find(|&i| i != p.primary(ObjectId::new(0)).index())
            .expect("degree-2 scheme has a non-primary replicator");
        let plan = FaultPlan::new(7).crash(victim, 50, 700);
        let run = run_faulted(&p, &s, Some(plan), RepairConfig::default())?;
        let r = &run.report;
        assert!(r.reads_balanced(), "{r}");
        assert!(r.writes_balanced(), "{r}");
        assert!(r.first_degradation_at.is_some());
        assert!(r.repair_replicas_created >= 1);
        assert!(r.repair_traffic > 0);
        assert_eq!(r.min_degree_unmet, 0);
        // The repaired scheme is valid and meets the floor everywhere.
        run.scheme.validate(&p)?;
        for k in p.objects() {
            assert!(run.scheme.replica_degree(k) >= 2);
        }
        // Primaries were never evicted.
        for k in p.objects() {
            assert!(run.scheme.holds(p.primary(k), k));
        }
        Ok(())
    }

    #[test]
    fn same_plan_is_bitwise_identical() -> TestResult {
        let p = problem();
        let s = scheme_with_degree_2(&p);
        let go = || {
            run_faulted(
                &p,
                &s,
                Some(
                    FaultPlan::new(21)
                        .crash(1, 40, 300)
                        .crash(2, 100, 200)
                        .drop_probability(0.05)
                        .jitter(2),
                ),
                RepairConfig::default(),
            )
        };
        let a = go()?;
        let b = go()?;
        assert_eq!(a.report, b.report);
        assert_eq!(a.traffic, b.traffic);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.fault_stats, b.fault_stats);
        assert_eq!(a.events, b.events);
        Ok(())
    }

    #[test]
    fn all_replicas_down_waits_for_recovery_without_losing_reads() -> TestResult {
        let p = problem();
        let s = scheme_with_degree_2(&p);
        // Take down both replicators of object 1 (primary at site 3).
        let holders: Vec<usize> = s.replicators(ObjectId::new(1)).map(SiteId::index).collect();
        let mut plan = FaultPlan::new(3);
        for &h in &holders {
            plan = plan.crash(h, 10, 550);
        }
        let run = run_faulted(&p, &s, Some(plan), RepairConfig::default())?;
        let r = &run.report;
        assert!(r.reads_balanced(), "{r}");
        assert_eq!(r.reads_lost, 0, "{r}");
        assert!(r.reads_degraded > 0);
        Ok(())
    }

    #[test]
    fn recorded_run_is_identical_and_publishes_counters() -> TestResult {
        use drp_core::telemetry::InMemoryRecorder;

        let p = problem();
        let s = scheme_with_degree_2(&p);
        let plan = FaultPlan::new(7).crash(1, 40, 300).jitter(2);
        let bare = run_faulted(&p, &s, Some(plan.clone()), RepairConfig::default())?;
        let recorder = Arc::new(InMemoryRecorder::new());
        let recorded = run_faulted_recorded(
            &p,
            &s,
            Some(plan),
            RepairConfig::default(),
            recorder.clone(),
        )?;
        assert_eq!(bare.report, recorded.report);
        assert_eq!(bare.traffic, recorded.traffic);
        assert_eq!(bare.events, recorded.events);
        assert!(recorder.span_count("repair.sweep") > 0);
        assert_eq!(recorder.span_count("sim.run"), 1);
        assert_eq!(recorder.counter("sim.events"), recorded.events);
        assert_eq!(
            recorder.counter("fault.crashes"),
            recorded.fault_stats.crashes
        );
        assert_eq!(
            recorder.counter("evaluator.flips"),
            recorded.report.repair_replicas_created
        );
        Ok(())
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let p = problem();
        let s = ReplicationScheme::primary_only(&p);
        let bad = RepairConfig {
            rpc_timeout: 0,
            ..RepairConfig::default()
        };
        assert!(run_faulted(&p, &s, None, bad).is_err());
    }
}
