//! Sharded hierarchical solving — the driver that breaks the `M = 1000`
//! ceiling.
//!
//! The flat pipeline (all-pairs cost matrix → GRA over `M·N`-bit
//! chromosomes) is quadratic in the site count twice over; past a thousand
//! sites it stops being a tool. This module decomposes the network
//! instead:
//!
//! 1. **Partition** the sites into `K` connected clusters by seeded
//!    farthest-point sampling plus a multi-source shortest-path-tree
//!    ownership sweep ([`drp_net::shortest::multi_source_owner`]).
//! 2. **Shard**: each cluster becomes a small, dense sub-[`Problem`].
//!    Every neighboring cluster is folded into one *virtual border site*
//!    attached by the cheapest cross-edges; aggregated remote read/write
//!    traffic lands on those borders, and objects whose primary lives
//!    elsewhere get the border toward their owner as a stand-in primary —
//!    so each shard sees the *global* update-broadcast pressure and the
//!    demand it could capture, at local size.
//! 3. **Solve** each shard with the exact tree-placement oracle
//!    ([`Adr`]) when its metric is a tree, falling back to a compact
//!    [`Gra`] run seeded independently per shard.
//! 4. **Reconcile**: member placements map straight onto global sites
//!    (shard capacities are the real ones, so they compose); an owner
//!    shard's border replicas — "this object wants a copy toward cluster
//!    `d`" — are granted at the portal site behind the border,
//!    capacity-permitting, in deterministic order.
//! 5. **Refine**: a few drop/add local-search passes over the
//!    [`SparseEvaluator`]'s k-nearest candidate structure polish the
//!    cross-shard seams in `O(k)` per flip.
//!
//! The result is scored *exactly* (Dijkstra-based
//! [`SparseProblem::total_cost`]) — the approximations live in the search,
//! never in the reported NTC.

use drp_core::{
    CoreError, DenseMatrix, ObjectId, Problem, ReplicationAlgorithm, SiteId, SparseEvaluator,
    SparseProblem,
};
use drp_net::shortest;
use drp_net::{CostMatrix, Graph, SparseCostRows};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adr::{tree_adjacency, Adr};
use crate::{Gra, GraConfig};

/// FNV-1a over a word sequence — the same seed-mixing scheme the serve
/// runtime and experiment harness use to derive independent rng streams.
fn mix(words: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Stream tags for `mix([seed, TAG, ...])`.
const TAG_SEEDS: u64 = 11;
const TAG_SHARD: u64 = 12;

/// Configuration of the sharded solver.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Requested cluster count `K` (clamped to `[1, M]`).
    pub shards: usize,
    /// Candidate-list width for the refine passes' [`SparseCostRows`].
    /// The truncated evaluator undervalues replicas whose readers sit
    /// beyond the `knn`-nearest ring, so wider is safer: the refined
    /// placement is only kept when its *exact* NTC does not regress.
    pub knn: usize,
    /// Per-shard GRA configuration (shards are small, so the defaults here
    /// are leaner than [`GraConfig::default`]).
    pub gra: GraConfig,
    /// Drop/add local-search passes over the stitched global placement.
    pub refine_passes: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            knn: 128,
            gra: GraConfig {
                population_size: 16,
                generations: 24,
                ..GraConfig::default()
            },
            refine_passes: 3,
        }
    }
}

/// Which solver handled a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSolver {
    /// The shard metric was a tree; the exact ADR oracle solved it.
    Tree,
    /// General metric; a compact GRA run solved it.
    Genetic,
}

/// Diagnostics of one sharded solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Clusters actually used (`K` after clamping).
    pub clusters: usize,
    /// Member sites per cluster.
    pub shard_sites: Vec<usize>,
    /// Border replicas the owner shards asked for.
    pub border_requested: usize,
    /// Of those, granted at a portal site.
    pub border_placed: usize,
    /// Of those, dropped (already present, or portal out of capacity).
    pub border_dropped: usize,
    /// Flips applied by the refine passes.
    pub refine_moves: usize,
    /// Per-shard solver used.
    pub solvers: Vec<ShardSolver>,
}

/// Result of a sharded solve: a feasible global placement with its exact
/// NTC.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Sorted global replica lists, one per object, each containing the
    /// object's primary.
    pub placement: Vec<Vec<usize>>,
    /// Exact Eq. 4 NTC of `placement` over the graph metric.
    pub ntc: u64,
    /// Primary-only baseline NTC.
    pub d_prime: u64,
    /// Decomposition diagnostics.
    pub report: ShardReport,
}

impl ShardOutcome {
    /// Percentage of NTC saved relative to the primary-only allocation.
    pub fn savings_percent(&self) -> f64 {
        if self.d_prime == 0 {
            return 0.0;
        }
        100.0 * (self.d_prime as f64 - self.ntc as f64) / self.d_prime as f64
    }

    /// FNV-1a fingerprint of the placement — equal fingerprints mean
    /// bitwise-equal placements, the determinism handle the smoke tests
    /// compare across thread counts and feature sets.
    pub fn fingerprint(&self) -> u64 {
        let mut words = Vec::new();
        for (k, replicas) in self.placement.iter().enumerate() {
            words.push(k as u64);
            words.extend(replicas.iter().map(|&j| j as u64));
        }
        mix(&words)
    }
}

/// Internal: one cluster's mapping between global and shard-local ids.
struct Shard {
    /// Global ids of member sites, ascending; local id = position.
    members: Vec<usize>,
    /// Neighbor cluster ids, ascending; border local id = `members.len() +
    /// position`.
    neighbors: Vec<usize>,
    /// Portal (global) site in each neighbor cluster: the far endpoint of
    /// the cheapest cross-edge.
    portals: Vec<usize>,
}

/// The sharded hierarchical solver over [`SparseProblem`] instances.
///
/// # Examples
///
/// ```
/// use drp_algo::shard::{ShardConfig, ShardedSolver};
/// use drp_workload::{TopologyKind, WorkloadSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut spec = WorkloadSpec::paper(40, 12, 5.0, 30.0);
/// spec.topology = TopologyKind::Hierarchical { clusters: 4, wan_factor: 10 };
/// let sp = spec.generate_sparse(&mut StdRng::seed_from_u64(7))?;
/// let outcome = ShardedSolver::new(4).solve(&sp, 7)?;
/// assert!(outcome.ntc <= outcome.d_prime);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardedSolver {
    config: ShardConfig,
}

impl ShardedSolver {
    /// Solver with `shards` clusters and default tuning.
    pub fn new(shards: usize) -> Self {
        Self::with_config(ShardConfig {
            shards,
            ..ShardConfig::default()
        })
    }

    /// Solver with explicit configuration.
    pub fn with_config(config: ShardConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Runs the full partition → shard-solve → reconcile → refine
    /// pipeline. Deterministic per `(instance, config, seed)`.
    ///
    /// # Errors
    ///
    /// Propagates sub-problem construction and solver failures.
    pub fn solve(&self, sp: &SparseProblem, seed: u64) -> drp_core::Result<ShardOutcome> {
        let m = sp.num_sites();
        let n = sp.num_objects();
        let k_clusters = self.config.shards.clamp(1, m);

        // 1. Partition: farthest-point seeds, then connected ownership
        // cells along the multi-source shortest-path tree.
        let seeds = farthest_point_seeds(sp.graph(), k_clusters, mix(&[seed, TAG_SEEDS]));
        let (_, owner) =
            shortest::multi_source_owner(sp.graph(), &seeds).map_err(CoreError::Net)?;

        let shards = build_shards(sp.graph(), &owner, k_clusters);
        let owner_cluster: Vec<usize> = (0..n)
            .map(|k| owner[sp.primary(ObjectId::new(k)).index()])
            .collect();

        // Per-cluster aggregate demand per object, for border folding.
        let mut agg_reads = DenseMatrix::zeros(k_clusters, n);
        let mut agg_writes = DenseMatrix::zeros(k_clusters, n);
        for (i, &c) in owner.iter().enumerate() {
            for k in 0..n {
                *agg_reads.get_mut(c, k) += sp.object_reads(ObjectId::new(k))[i];
                *agg_writes.get_mut(c, k) += sp.object_writes(ObjectId::new(k))[i];
            }
        }

        // Seed-rooted distance rows route non-neighbor clusters to a
        // deterministic portal.
        let seed_dists: Vec<Vec<u64>> = seeds
            .iter()
            .map(|&s| shortest::dijkstra_flat(sp.graph(), s).map_err(CoreError::Net))
            .collect::<drp_core::Result<_>>()?;

        // 2 + 3. Build and solve each shard.
        let mut placement: Vec<Vec<usize>> = (0..n)
            .map(|k| vec![sp.primary(ObjectId::new(k)).index()])
            .collect();
        let mut used = vec![0u64; m];
        for (k, p) in placement.iter().enumerate() {
            used[p[0]] += sp.object_size(ObjectId::new(k));
        }
        let mut border_requests: Vec<(usize, usize)> = Vec::new(); // (object, portal site)
        let mut solvers = Vec::with_capacity(k_clusters);
        for (c, shard) in shards.iter().enumerate() {
            let (problem, is_tree) = build_shard_problem(
                sp,
                shard,
                c,
                &owner,
                &owner_cluster,
                &agg_reads,
                &agg_writes,
                &seed_dists,
            )?;
            let mut rng = StdRng::seed_from_u64(mix(&[seed, TAG_SHARD, c as u64]));
            let scheme = if is_tree {
                solvers.push(ShardSolver::Tree);
                Adr::default().solve(&problem, &mut rng)?
            } else {
                solvers.push(ShardSolver::Genetic);
                Gra::with_config(self.config.gra.clone()).solve(&problem, &mut rng)?
            };

            // 4a. Member placements map straight to global sites.
            let mc = shard.members.len();
            for k in 0..n {
                for (local, &global) in shard.members.iter().enumerate() {
                    if !scheme.holds(SiteId::new(local), ObjectId::new(k))
                        || placement[k].binary_search(&global).is_ok()
                    {
                        continue;
                    }
                    let pos = placement[k].binary_search(&global).unwrap_err();
                    placement[k].insert(pos, global);
                    used[global] += sp.object_size(ObjectId::new(k));
                }
                // 4b. Border replicas: only the owner shard speaks for an
                // object's cross-cluster copies, and a stand-in primary is
                // not a request.
                if owner_cluster[k] != c {
                    continue;
                }
                for (b, &portal) in shard.portals.iter().enumerate() {
                    if scheme.holds(SiteId::new(mc + b), ObjectId::new(k)) {
                        border_requests.push((k, portal));
                    }
                }
            }
        }

        // 4c. Grant border requests in deterministic (object, portal)
        // order, re-checking global capacity.
        border_requests.sort_unstable();
        let mut border_placed = 0usize;
        let mut border_dropped = 0usize;
        for &(k, portal) in &border_requests {
            let size = sp.object_size(ObjectId::new(k));
            if placement[k].binary_search(&portal).is_ok() {
                border_dropped += 1;
                continue;
            }
            if used[portal] + size > sp.capacity(SiteId::new(portal)) {
                border_dropped += 1;
                continue;
            }
            let pos = placement[k].binary_search(&portal).unwrap_err();
            placement[k].insert(pos, portal);
            used[portal] += size;
            border_placed += 1;
        }

        // 5. Refine the seams with k-nearest local search. The evaluator
        // scores a truncated upper bound, so a pass can chase the bound
        // while the exact NTC drifts up (a replica whose readers are all
        // outside the knn ring looks worthless). Guard with the exact
        // metric: keep the refined placement only if it scores no worse.
        let stitched_ntc = sp.total_cost(&placement)?;
        let rows =
            SparseCostRows::from_graph(sp.graph(), self.config.knn).map_err(CoreError::Net)?;
        let mut eval = SparseEvaluator::new(sp, &rows, &placement)?;
        let mut refine_moves = 0usize;
        for _ in 0..self.config.refine_passes {
            refine_moves += refine_pass(&mut eval, &rows);
        }
        let (placement, ntc) = if refine_moves > 0 {
            let refined = eval.placement().to_vec();
            let refined_ntc = sp.total_cost(&refined)?;
            if refined_ntc <= stitched_ntc {
                (refined, refined_ntc)
            } else {
                refine_moves = 0;
                (placement, stitched_ntc)
            }
        } else {
            (placement, stitched_ntc)
        };
        Ok(ShardOutcome {
            placement,
            ntc,
            d_prime: sp.d_prime(),
            report: ShardReport {
                clusters: k_clusters,
                shard_sites: shards.iter().map(|s| s.members.len()).collect(),
                border_requested: border_requests.len(),
                border_placed,
                border_dropped,
                refine_moves,
                solvers,
            },
        })
    }
}

/// K-center style seed selection: a mixed-seed first pick, then repeatedly
/// the site farthest from all chosen seeds (ties to the lowest id).
fn farthest_point_seeds(graph: &Graph, k: usize, entropy: u64) -> Vec<usize> {
    let m = graph.num_sites();
    let mut seeds = Vec::with_capacity(k);
    let first = (entropy % m as u64) as usize;
    seeds.push(first);
    let mut min_dist =
        shortest::dijkstra_flat(graph, first).expect("first seed is in range on a nonempty graph");
    while seeds.len() < k {
        let next = min_dist
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| a.cmp(b).then(j.cmp(i)))
            .map(|(i, _)| i)
            .expect("graph has sites");
        seeds.push(next);
        let dist = shortest::dijkstra_flat(graph, next).expect("seed is in range");
        for (slot, d) in min_dist.iter_mut().zip(dist) {
            *slot = (*slot).min(d);
        }
    }
    seeds.sort_unstable();
    seeds
}

/// Groups sites by owner and finds, per cluster, its neighbor clusters and
/// cheapest portal into each.
fn build_shards(graph: &Graph, owner: &[usize], k_clusters: usize) -> Vec<Shard> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k_clusters];
    for (i, &c) in owner.iter().enumerate() {
        members[c].push(i);
    }
    // Cheapest cross-edge per ordered cluster pair: (cost, far site) with
    // lexicographic ties.
    let mut portal: Vec<Vec<Option<(u64, usize)>>> = vec![vec![None; k_clusters]; k_clusters];
    for e in graph.edges() {
        let (ca, cb) = (owner[e.a], owner[e.b]);
        if ca == cb {
            continue;
        }
        for (c, d, far) in [(ca, cb, e.b), (cb, ca, e.a)] {
            let cand = (e.cost, far);
            if portal[c][d].is_none_or(|best| cand < best) {
                portal[c][d] = Some(cand);
            }
        }
    }
    (0..k_clusters)
        .map(|c| {
            let neighbors: Vec<usize> = (0..k_clusters)
                .filter(|&d| portal[c][d].is_some())
                .collect();
            let portals = neighbors
                .iter()
                .map(|&d| portal[c][d].expect("neighbor has a portal").1)
                .collect();
            Shard {
                members: members[c].clone(),
                neighbors,
                portals,
            }
        })
        .collect()
}

/// Materializes one shard as a dense [`Problem`]: members plus one virtual
/// border site per neighbor cluster, cheapest cross-edges as border links,
/// remote demand aggregated onto the border toward its cluster, and remote
/// primaries stood in by the border toward their owner. Returns the
/// problem and whether its metric is a tree (exactly solvable by ADR).
#[allow(clippy::too_many_arguments)]
fn build_shard_problem(
    sp: &SparseProblem,
    shard: &Shard,
    c: usize,
    owner: &[usize],
    owner_cluster: &[usize],
    agg_reads: &DenseMatrix<u64>,
    agg_writes: &DenseMatrix<u64>,
    seed_dists: &[Vec<u64>],
) -> drp_core::Result<(Problem, bool)> {
    let n = sp.num_objects();
    let mc = shard.members.len();
    let m_sub = mc + shard.neighbors.len();
    let mut local_of = vec![usize::MAX; sp.num_sites()];
    for (local, &global) in shard.members.iter().enumerate() {
        local_of[global] = local;
    }

    let mut graph = Graph::new(m_sub).map_err(CoreError::Net)?;
    // Intra-cluster edges survive as-is.
    for e in sp.graph().edges() {
        let (a, b) = (local_of[e.a], local_of[e.b]);
        if a != usize::MAX && b != usize::MAX {
            graph.add_edge(a, b, e.cost).map_err(CoreError::Net)?;
        }
    }
    // Border links: per neighbor, the cheapest edge from each boundary
    // member into that cluster.
    for (b, &d) in shard.neighbors.iter().enumerate() {
        let border = mc + b;
        let mut cheapest: Vec<Option<u64>> = vec![None; mc];
        for e in sp.graph().edges() {
            for (near, far) in [(e.a, e.b), (e.b, e.a)] {
                let local = local_of[near];
                if local == usize::MAX || local_of[far] != usize::MAX {
                    continue;
                }
                // `far` is outside the shard; route it to this border only
                // if it belongs to cluster `d`.
                if owner[far] == d {
                    let slot = &mut cheapest[local];
                    if slot.is_none_or(|w| e.cost < w) {
                        *slot = Some(e.cost);
                    }
                }
            }
        }
        for (local, w) in cheapest.iter().enumerate() {
            if let Some(w) = w {
                graph.add_edge(local, border, *w).map_err(CoreError::Net)?;
            }
        }
    }
    let costs = CostMatrix::from_graph(&graph).map_err(CoreError::Net)?;
    let is_tree = tree_adjacency(&costs).is_some();

    // Route every external cluster to one of this shard's borders: itself
    // if it is a neighbor, otherwise the neighbor whose portal its seed
    // reaches cheapest (ties to the lowest neighbor id).
    let k_clusters = seed_dists.len();
    let mut border_of_cluster = vec![usize::MAX; k_clusters];
    for e in 0..k_clusters {
        if e == c {
            continue;
        }
        if let Some(b) = shard.neighbors.iter().position(|&d| d == e) {
            border_of_cluster[e] = b;
            continue;
        }
        let mut best: Option<(u64, usize)> = None;
        for (b, &p) in shard.portals.iter().enumerate() {
            let cand = (seed_dists[e][p], b);
            if best.is_none_or(|cur| cand < cur) {
                best = Some(cand);
            }
        }
        // An isolated shard (no neighbors) can only arise with one
        // cluster, where this loop body is unreachable.
        border_of_cluster[e] = best.expect("multi-cluster shards have neighbors").1;
    }

    // Workload tables: member rows verbatim, remote demand folded onto
    // borders.
    let mut reads = DenseMatrix::zeros(m_sub, n);
    let mut writes = DenseMatrix::zeros(m_sub, n);
    for (local, &global) in shard.members.iter().enumerate() {
        for k in 0..n {
            reads.set(local, k, sp.object_reads(ObjectId::new(k))[global]);
            writes.set(local, k, sp.object_writes(ObjectId::new(k))[global]);
        }
    }
    for (e, &border_slot) in border_of_cluster.iter().enumerate() {
        if e == c {
            continue;
        }
        let border = mc + border_slot;
        for k in 0..n {
            *reads.get_mut(border, k) += *agg_reads.get(e, k);
            *writes.get_mut(border, k) += *agg_writes.get(e, k);
        }
    }

    // Primaries: local where owned, the stand-in border otherwise.
    let primaries: Vec<SiteId> = (0..n)
        .map(|k| {
            if owner_cluster[k] == c {
                SiteId::new(local_of[sp.primary(ObjectId::new(k)).index()])
            } else {
                SiteId::new(mc + border_of_cluster[owner_cluster[k]])
            }
        })
        .collect();
    let sizes: Vec<u64> = (0..n).map(|k| sp.object_size(ObjectId::new(k))).collect();

    // Capacities: real for members. Borders aggregate a whole cluster (and
    // stand in for remote primaries), so they get room for everything;
    // border replicas are re-checked against the true portal capacity at
    // reconcile time.
    let total_size: u64 = sizes.iter().sum();
    let mut capacities: Vec<u64> = shard
        .members
        .iter()
        .map(|&g| sp.capacity(SiteId::new(g)))
        .collect();
    capacities.extend(std::iter::repeat_n(total_size, shard.neighbors.len()));

    let mut builder = Problem::builder(costs);
    builder.objects_bulk(sizes, primaries);
    builder.capacities(capacities);
    builder.read_matrix(reads);
    builder.write_matrix(writes);
    Ok((builder.build()?, is_tree))
}

/// One deterministic drop/add sweep. Removals first (cheap, few replicas),
/// then additions over the union of the current replicas' k-nearest
/// in-neighborhoods. Returns the number of applied flips.
fn refine_pass(eval: &mut SparseEvaluator<'_>, rows: &SparseCostRows) -> usize {
    let sp = eval.problem();
    let n = sp.num_objects();
    let mut moves = 0usize;
    for k in 0..n {
        let object = ObjectId::new(k);
        let primary = sp.primary(object).index();
        for j in eval.replicas(object).to_vec() {
            if j == primary {
                continue;
            }
            if eval.delta_remove(SiteId::new(j), object) < 0 {
                eval.apply_remove(SiteId::new(j), object)
                    .expect("replica membership just checked");
                moves += 1;
            }
        }
        let mut seen = vec![false; sp.num_sites()];
        let mut candidates = Vec::new();
        for &j in eval.replicas(object) {
            let (sites, _) = rows.reverse_row(j);
            for &x in sites {
                if !seen[x as usize] {
                    seen[x as usize] = true;
                    candidates.push(x as usize);
                }
            }
        }
        for x in candidates {
            if eval.holds(SiteId::new(x), object)
                || sp.object_size(object) > eval.free_capacity(SiteId::new(x))
            {
                continue;
            }
            if eval.delta_add(SiteId::new(x), object) < 0 {
                eval.apply_add(SiteId::new(x), object)
                    .expect("capacity and membership just checked");
                moves += 1;
            }
        }
    }
    moves
}
