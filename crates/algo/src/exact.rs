//! Exact branch-and-bound solver for small instances.
//!
//! The DRP is NP-complete, but tiny instances (`M ≤ ~10`, `N ≤ ~10`) can be
//! solved exactly: for each object we enumerate all `2^(M−1)` replica sets
//! once, order them by unconstrained cost, and depth-first search object by
//! object with two prunes:
//!
//! * **bound** — the running cost plus the sum of the remaining objects'
//!   unconstrained minima (admissible: capacities only ever increase cost)
//!   must stay below the incumbent;
//! * **capacity** — partial assignments that overfill a site are cut.
//!
//! This gives the optimality-gap measurements in the test suite and the
//! EXPERIMENTS.md appendix: how far SRA/GRA land from the true optimum where
//! the optimum is computable at all.

use drp_core::{
    CoreError, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId,
};
use rand::RngCore;

/// Exact solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct BranchBound {
    /// Refuse instances with more sites than this (default 12) — the
    /// per-object enumeration is `2^(M−1)`.
    pub max_sites: usize,
    /// Refuse instances where `N · 2^(M−1)` exceeds this (default 10⁶).
    pub max_table: u64,
}

impl Default for BranchBound {
    fn default() -> Self {
        Self {
            max_sites: 12,
            max_table: 1_000_000,
        }
    }
}

struct Candidate {
    /// Bitmask over sites (always includes the primary).
    mask: u32,
    /// Unconstrained per-object cost of this replica set.
    cost: u64,
}

#[allow(clippy::needless_range_loop)] // bitmask/site co-indexing
impl BranchBound {
    /// Per-object candidate replica sets, sorted by cost ascending. The
    /// replica list and nearest-cost buffers are reused across all
    /// `2^(M−1)` subsets, and the cost comes from the shared Eq. 4 kernel.
    fn candidates(problem: &Problem, object: ObjectId) -> Vec<Candidate> {
        let m = problem.num_sites();
        let sp = problem.primary(object).index();
        let others: Vec<usize> = (0..m).filter(|&i| i != sp).collect();

        let mut out = Vec::with_capacity(1 << others.len());
        let mut replicas: Vec<usize> = Vec::with_capacity(m);
        let mut nearest = vec![u64::MAX; m];
        for subset in 0u32..(1 << others.len()) {
            let mut mask = 1u32 << sp;
            for (bit, &site) in others.iter().enumerate() {
                if subset & (1 << bit) != 0 {
                    mask |= 1 << site;
                }
            }
            // The kernel wants the replica list sorted ascending; walking
            // the mask bits in site order provides exactly that.
            replicas.clear();
            for i in 0..m {
                if mask & (1 << i) != 0 {
                    replicas.push(i);
                }
            }
            let cost = problem.object_cost_from_replicas(object, &replicas, &mut nearest);
            out.push(Candidate { mask, cost });
        }
        out.sort_by_key(|c| c.cost);
        out
    }

    #[allow(clippy::too_many_arguments)] // explicit DFS state beats a context struct here
    fn dfs(
        problem: &Problem,
        tables: &[Vec<Candidate>],
        suffix_lb: &[u64],
        k: usize,
        free: &mut Vec<u64>,
        cost_so_far: u64,
        chosen: &mut Vec<u32>,
        best_cost: &mut u64,
        best_choice: &mut Vec<u32>,
    ) {
        if cost_so_far + suffix_lb[k] >= *best_cost {
            return;
        }
        if k == tables.len() {
            *best_cost = cost_so_far;
            best_choice.clone_from(chosen);
            return;
        }
        let object = ObjectId::new(k);
        let size = problem.object_size(object);
        let sp = problem.primary(object).index();
        for candidate in &tables[k] {
            // Candidates are cost-sorted; once even this object's cost
            // breaks the bound, later candidates cannot help.
            if cost_so_far + candidate.cost + suffix_lb[k + 1] >= *best_cost {
                break;
            }
            // Capacity check.
            let mut feasible = true;
            for i in 0..problem.num_sites() {
                if i != sp && candidate.mask & (1 << i) != 0 && free[i] < size {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                continue;
            }
            for i in 0..problem.num_sites() {
                if i != sp && candidate.mask & (1 << i) != 0 {
                    free[i] -= size;
                }
            }
            chosen.push(candidate.mask);
            Self::dfs(
                problem,
                tables,
                suffix_lb,
                k + 1,
                free,
                cost_so_far + candidate.cost,
                chosen,
                best_cost,
                best_choice,
            );
            chosen.pop();
            for i in 0..problem.num_sites() {
                if i != sp && candidate.mask & (1 << i) != 0 {
                    free[i] += size;
                }
            }
        }
    }
}

impl ReplicationAlgorithm for BranchBound {
    fn name(&self) -> &str {
        "BranchBound"
    }

    fn solve(&self, problem: &Problem, _rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        if m > self.max_sites
            || (n as u64).saturating_mul(1u64 << (m.saturating_sub(1))) > self.max_table
        {
            return Err(CoreError::InvalidInstance {
                reason: format!(
                    "instance {m}x{n} too large for exact search (limits: {} sites, {} table)",
                    self.max_sites, self.max_table
                ),
            });
        }

        let tables: Vec<Vec<Candidate>> = (0..n)
            .map(|k| Self::candidates(problem, ObjectId::new(k)))
            .collect();
        // suffix_lb[k] = Σ_{j ≥ k} min cost of object j (unconstrained).
        let mut suffix_lb = vec![0u64; n + 1];
        for k in (0..n).rev() {
            suffix_lb[k] = suffix_lb[k + 1] + tables[k][0].cost;
        }

        // Capacity left after the mandatory primaries.
        let primaries = ReplicationScheme::primary_only(problem);
        let mut free: Vec<u64> = (0..m)
            .map(|i| primaries.free_capacity(problem, SiteId::new(i)))
            .collect();

        let mut best_cost = problem.d_prime() + 1; // beaten by primary-only at worst
        let mut best_choice = Vec::new();
        let mut chosen = Vec::with_capacity(n);
        Self::dfs(
            problem,
            &tables,
            &suffix_lb,
            0,
            &mut free,
            0,
            &mut chosen,
            &mut best_cost,
            &mut best_choice,
        );
        debug_assert_eq!(best_choice.len(), n, "primary-only is always feasible");

        ReplicationScheme::from_fn(problem, |site, object| {
            best_choice[object.index()] & (1 << site.index()) != 0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::HillClimb;
    use crate::{Gra, GraConfig, Sra};
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(5, 5, 10.0, 30.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn optimum_bounds_every_heuristic() {
        for seed in 0..6 {
            let p = problem(seed);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let optimal = BranchBound::default().solve(&p, &mut rng).unwrap();
            optimal.validate(&p).unwrap();
            let opt_cost = p.total_cost(&optimal);

            let sra = Sra::new().solve(&p, &mut rng).unwrap();
            assert!(
                opt_cost <= p.total_cost(&sra),
                "seed {seed}: SRA beat the optimum"
            );

            let gra = Gra::with_config(GraConfig {
                population_size: 8,
                generations: 10,
                ..GraConfig::default()
            })
            .solve(&p, &mut rng)
            .unwrap();
            assert!(
                opt_cost <= p.total_cost(&gra),
                "seed {seed}: GRA beat the optimum"
            );

            let hc = HillClimb::default().solve(&p, &mut rng).unwrap();
            assert!(
                opt_cost <= p.total_cost(&hc),
                "seed {seed}: hill climb beat the optimum"
            );
        }
    }

    #[test]
    fn optimum_never_exceeds_primary_only() {
        let p = problem(42);
        let mut rng = StdRng::seed_from_u64(1);
        let optimal = BranchBound::default().solve(&p, &mut rng).unwrap();
        assert!(p.total_cost(&optimal) <= p.d_prime());
    }

    #[test]
    fn matches_exhaustive_check_on_tiny_instance() {
        // 3 sites × 2 objects: exhaustively enumerate all valid schemes.
        let p = WorkloadSpec::paper(3, 2, 20.0, 50.0)
            .generate(&mut StdRng::seed_from_u64(3))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let optimal = BranchBound::default().solve(&p, &mut rng).unwrap();
        let mut best = u64::MAX;
        for bits in 0u32..(1 << 6) {
            let scheme = ReplicationScheme::from_fn(&p, |site, object| {
                bits & (1 << (site.index() * 2 + object.index())) != 0
            });
            if let Ok(s) = scheme {
                best = best.min(p.total_cost(&s));
            }
        }
        assert_eq!(p.total_cost(&optimal), best);
    }

    #[test]
    fn refuses_oversized_instances() {
        let p = WorkloadSpec::paper(20, 10, 5.0, 20.0)
            .generate(&mut StdRng::seed_from_u64(5))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(BranchBound::default().solve(&p, &mut rng).is_err());
    }
}
