//! Minimum replication degree — a fault-tolerance extension.
//!
//! The paper's conclusions name fault tolerance as future work: a purely
//! NTC-driven placement may leave an object with a single copy, so one site
//! failure makes it unreadable. This module adds the classic *k-of-N*
//! guard: every object must hold at least `d` replicas.
//!
//! [`MinDegree`] wraps any [`ReplicationAlgorithm`]: the inner solver
//! optimizes NTC as usual, then under-replicated objects are topped up with
//! the replicas that hurt the objective least (exact incremental deltas,
//! capacity permitting). The availability gain and the NTC price of `d` are
//! both measurable via [`drp_core::availability`].

use drp_core::{CoreError, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId};
use rand::RngCore;

/// Outcome of a min-degree top-up pass: what was added, and which objects
/// could not reach the floor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinDegreeReport {
    /// Replicas added across all objects.
    pub added: usize,
    /// Objects whose degree floor is unsatisfiable under the current
    /// capacities — they were topped up as far as room allowed and then
    /// left below the floor. Sorted by object id.
    pub unsatisfiable: Vec<drp_core::ObjectId>,
}

impl MinDegreeReport {
    /// Did every object reach the floor?
    pub fn is_complete(&self) -> bool {
        self.unsatisfiable.is_empty()
    }
}

/// Tops up every object to at least `degree` replicas, choosing for each
/// missing slot the site with the smallest exact NTC delta that still has
/// room.
///
/// Objects that cannot reach the floor (not enough sites with room) are
/// *reported*, not silently skipped and not fatal: they are topped up as
/// far as capacity allows and listed in
/// [`MinDegreeReport::unsatisfiable`], so callers — the repair loop in
/// particular — can distinguish "repaired" from "impossible".
///
/// # Errors
///
/// Returns an error only if a chosen addition is rejected by the scheme,
/// which indicates an internal inconsistency (candidates are pre-filtered
/// for room).
pub fn ensure_min_degree(
    problem: &Problem,
    scheme: &mut ReplicationScheme,
    degree: usize,
) -> Result<MinDegreeReport> {
    let target = degree.min(problem.num_sites());
    let mut report = MinDegreeReport::default();
    // One nearest-cost buffer serves every candidate evaluation.
    let mut nearest = vec![0u64; problem.num_sites()];
    for k in problem.objects() {
        while scheme.replica_degree(k) < target {
            let candidate = problem
                .sites()
                .filter(|&i| {
                    !scheme.holds(i, k)
                        && problem.object_size(k) <= scheme.free_capacity(problem, i)
                })
                .min_by_key(|&i| problem.delta_add_replica_with(scheme, i, k, &mut nearest));
            match candidate {
                Some(site) => {
                    scheme.add_replica(problem, site, k)?;
                    report.added += 1;
                }
                None => {
                    report.unsatisfiable.push(k);
                    break;
                }
            }
        }
    }
    Ok(report)
}

/// A solver wrapper enforcing a minimum replication degree on the inner
/// solver's output.
///
/// # Examples
///
/// ```
/// use drp_algo::fault_tolerance::MinDegree;
/// use drp_algo::Sra;
/// use drp_core::{availability, ReplicationAlgorithm};
/// use drp_workload::WorkloadSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let problem = WorkloadSpec::paper(10, 12, 5.0, 60.0).generate(&mut rng)?;
/// let plain = Sra::new().solve(&problem, &mut rng)?;
/// let guarded = MinDegree { degree: 2, inner: Sra::new() }.solve(&problem, &mut rng)?;
/// let before = availability::mean_availability(&plain, 0.1);
/// let after = availability::mean_availability(&guarded, 0.1);
/// assert!(after >= before);
/// assert!(after >= 1.0 - 0.1 * 0.1); // every object has ≥ 2 copies
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MinDegree<A> {
    /// Minimum replicas per object (clamped to the number of sites).
    pub degree: usize,
    /// The NTC-optimizing solver run first.
    pub inner: A,
}

impl<A: ReplicationAlgorithm> ReplicationAlgorithm for MinDegree<A> {
    fn name(&self) -> &str {
        "MinDegree"
    }

    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let mut scheme = self.inner.solve(problem, rng)?;
        let report = ensure_min_degree(problem, &mut scheme, self.degree)?;
        // The wrapper promises the floor; an unsatisfiable object is fatal
        // here even though the bare function merely reports it.
        if let Some(&object) = report.unsatisfiable.first() {
            return Err(CoreError::InsufficientCapacity {
                site: SiteId::new(0),
                object,
                free: 0,
                size: problem.object_size(object),
            });
        }
        Ok(scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sra;
    use drp_core::availability;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64, capacity: f64) -> Problem {
        WorkloadSpec::paper(10, 12, 8.0, capacity)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn every_object_reaches_the_degree() {
        // Generous capacity: a 40%-of-total budget can make degree 3
        // genuinely infeasible on an unlucky random instance (SRA fills
        // sites unevenly first), which is a property of the instance, not a
        // bug in the top-up. 150% guarantees room for any degree ≤ M.
        let p = problem(1, 150.0);
        let mut rng = StdRng::seed_from_u64(2);
        for degree in [1usize, 2, 3] {
            let scheme = MinDegree {
                degree,
                inner: Sra::new(),
            }
            .solve(&p, &mut rng)
            .unwrap();
            scheme.validate(&p).unwrap();
            for k in p.objects() {
                assert!(
                    scheme.replica_degree(k) >= degree,
                    "object {k} at degree {degree}"
                );
            }
        }
    }

    #[test]
    fn degree_is_clamped_to_site_count() {
        let p = problem(3, 200.0);
        let mut scheme = drp_core::ReplicationScheme::primary_only(&p);
        ensure_min_degree(&p, &mut scheme, 10_000).unwrap();
        for k in p.objects() {
            assert_eq!(scheme.replica_degree(k), p.num_sites());
        }
    }

    #[test]
    fn top_up_uses_cheapest_deltas() {
        // The added replicas must never cost more than any alternative
        // single choice would have: verify the greedy pick is locally
        // optimal at each step by re-deriving the first addition.
        let p = problem(4, 40.0);
        let scheme = drp_core::ReplicationScheme::primary_only(&p);
        let k = p.objects().next().unwrap();
        let best_site = p
            .sites()
            .filter(|&i| !scheme.holds(i, k) && p.object_size(k) <= scheme.free_capacity(&p, i))
            .min_by_key(|&i| p.delta_add_replica(&scheme, i, k))
            .unwrap();
        let mut topped = scheme.clone();
        ensure_min_degree(&p, &mut topped, 2).unwrap();
        // Object k received exactly the best site (others too, but k's
        // first top-up happens before any other object touches capacity at
        // degree 2 of a primary-only start).
        assert!(topped.holds(best_site, k));
    }

    #[test]
    fn impossible_degrees_are_reported_not_fatal() {
        // Minimal capacities: only primaries fit, degree 2 is infeasible.
        use drp_net::CostMatrix;
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 0, 0])
            .object(10, SiteId::new(0))
            .reads(vec![0, 5, 5])
            .build()
            .unwrap();
        let mut scheme = drp_core::ReplicationScheme::primary_only(&p);
        let report = ensure_min_degree(&p, &mut scheme, 2).unwrap();
        assert_eq!(report.added, 0);
        assert!(!report.is_complete());
        let k = p.objects().next().unwrap();
        assert_eq!(report.unsatisfiable, vec![k]);
        // The scheme stays valid, just under-replicated.
        scheme.validate(&p).unwrap();

        // The MinDegree *wrapper* still promises the floor and errors out.
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            MinDegree {
                degree: 2,
                inner: Sra::new()
            }
            .solve(&p, &mut rng),
            Err(CoreError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn partial_top_up_still_adds_what_fits() {
        // Room for exactly one extra copy: degree 3 is unsatisfiable but
        // the pass must still take the one replica it can get.
        use drp_net::CostMatrix;
        let costs = CostMatrix::from_rows(3, vec![0, 1, 2, 1, 0, 1, 2, 1, 0]).unwrap();
        let p = Problem::builder(costs)
            .capacities(vec![10, 10, 0])
            .object(10, SiteId::new(0))
            .reads(vec![0, 5, 5])
            .build()
            .unwrap();
        let mut scheme = drp_core::ReplicationScheme::primary_only(&p);
        let report = ensure_min_degree(&p, &mut scheme, 3).unwrap();
        assert_eq!(report.added, 1);
        let k = p.objects().next().unwrap();
        assert_eq!(report.unsatisfiable, vec![k]);
        assert_eq!(scheme.replica_degree(k), 2);
    }

    #[test]
    fn availability_rises_with_degree_and_cost_is_paid() {
        let p = problem(5, 60.0);
        let mut rng = StdRng::seed_from_u64(6);
        let plain = Sra::new().solve(&p, &mut rng).unwrap();
        let guarded = MinDegree {
            degree: 3,
            inner: Sra::new(),
        }
        .solve(&p, &mut rng)
        .unwrap();
        let a_plain = availability::mean_availability(&plain, 0.1);
        let a_guarded = availability::mean_availability(&guarded, 0.1);
        assert!(a_guarded >= a_plain);
        assert!(a_guarded >= 1.0 - 0.1f64.powi(3) - 1e-12);
        // No assertion on the NTC direction: forced replicas usually cost,
        // but can also *improve* the objective when SRA's local view missed
        // a globally beneficial placement.
        let _ = (p.total_cost(&guarded), p.total_cost(&plain));
    }
}
