//! Simulated annealing — a single-solution metaheuristic baseline.
//!
//! A reproduction extension: the paper compares GRA only against SRA, which
//! leaves open whether the *population* buys anything over a classic
//! single-solution search with the same evaluation budget. This module
//! provides that comparison point (see the `ablation` experiment).
//!
//! Moves are single replica additions/removals scored with the exact
//! incremental deltas; acceptance follows the Metropolis criterion under a
//! geometric cooling schedule.

use drp_core::{
    CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId,
};
use rand::{Rng, RngCore};

/// Simulated annealing over replica add/remove moves.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Moves attempted (the evaluation budget).
    pub iterations: usize,
    /// Initial temperature as a fraction of `D_prime` (temperature scales
    /// with instance cost so acceptance is size-independent; a typical
    /// single-move delta is ~10⁻³ of `D_prime`, so the default starts at
    /// roughly that scale).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// Start from SRA's solution instead of primary-only.
    pub warm_start: bool,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            initial_temperature: 0.001,
            cooling: 0.9995,
            warm_start: true,
        }
    }
}

impl ReplicationAlgorithm for SimulatedAnnealing {
    fn name(&self) -> &str {
        "SimulatedAnnealing"
    }

    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        let m = problem.num_sites();
        let n = problem.num_objects();
        let start = if self.warm_start {
            crate::Sra::new().solve(problem, rng)?
        } else {
            ReplicationScheme::primary_only(problem)
        };
        // The evaluator's cached nearest/second-nearest state makes every
        // move peek O(M) instead of O(M · |R_k|), and its running total
        // replaces the manual cost accounting.
        let mut eval = CostEvaluator::new(problem, start);
        let mut best = eval.scheme().clone();
        let mut best_cost = eval.total();
        let mut temperature = self.initial_temperature * problem.d_prime().max(1) as f64;

        for _ in 0..self.iterations {
            let site = SiteId::new(rng.random_range(0..m));
            let object = ObjectId::new(rng.random_range(0..n));
            let removing = eval.scheme().holds(site, object);
            let delta = if removing {
                if problem.primary(object) == site {
                    temperature *= self.cooling;
                    continue;
                }
                eval.delta_remove(site, object)
            } else {
                if problem.object_size(object) > eval.scheme().free_capacity(problem, site) {
                    temperature *= self.cooling;
                    continue;
                }
                eval.delta_add(site, object)
            };

            let accept = delta <= 0
                || (temperature > 0.0
                    && rng.random::<f64>() < (-(delta as f64) / temperature).exp());
            if accept {
                if removing {
                    eval.apply_remove(site, object)?;
                } else {
                    eval.apply_add(site, object)?;
                }
                if eval.total() < best_cost {
                    best_cost = eval.total();
                    best = eval.scheme().clone();
                }
            }
            temperature *= self.cooling;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sra;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(10, 15, 5.0, 20.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    #[test]
    fn annealing_is_valid_and_never_worse_than_primary_only() {
        let p = problem(1);
        let mut rng = StdRng::seed_from_u64(2);
        let sa = SimulatedAnnealing {
            iterations: 3_000,
            ..SimulatedAnnealing::default()
        };
        let scheme = sa.solve(&p, &mut rng).unwrap();
        scheme.validate(&p).unwrap();
        assert!(p.total_cost(&scheme) <= p.d_prime());
    }

    #[test]
    fn warm_start_never_loses_to_sra() {
        // Best-so-far tracking starts at the SRA solution.
        let p = problem(3);
        let mut rng = StdRng::seed_from_u64(4);
        let sra_cost = p.total_cost(&Sra::new().solve(&p, &mut rng).unwrap());
        let sa = SimulatedAnnealing {
            iterations: 2_000,
            ..SimulatedAnnealing::default()
        };
        let sa_cost = p.total_cost(&sa.solve(&p, &mut rng).unwrap());
        assert!(sa_cost <= sra_cost);
    }

    #[test]
    fn cold_start_still_improves() {
        let p = problem(5);
        let mut rng = StdRng::seed_from_u64(6);
        let sa = SimulatedAnnealing {
            iterations: 5_000,
            warm_start: false,
            ..SimulatedAnnealing::default()
        };
        let scheme = sa.solve(&p, &mut rng).unwrap();
        assert!(p.total_cost(&scheme) < p.d_prime());
    }

    #[test]
    fn tracked_cost_matches_recomputation() {
        // The incremental accounting inside the loop must agree with a full
        // recomputation of the returned scheme.
        let p = problem(7);
        let mut rng = StdRng::seed_from_u64(8);
        let sa = SimulatedAnnealing {
            iterations: 1_000,
            ..SimulatedAnnealing::default()
        };
        let scheme = sa.solve(&p, &mut rng).unwrap();
        // Reconstructing the cost from scratch equals the model's value.
        assert_eq!(
            p.total_cost(&scheme),
            drp_core::replay::replay_total_cost(&p, &scheme).unwrap()
        );
    }
}
