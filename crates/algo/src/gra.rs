use std::sync::Arc;

use drp_core::telemetry::{self, Recorder};
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme, Result, SiteId};
use drp_ga::{ops, BitString, Engine, GaConfig, GaOutcome, GaSpec, SamplingSpace, SelectionScheme};
use rand::{Rng, RngCore};

use drp_core::pool::WorkerPool;

use crate::encoding::{
    chromosome_cost_with, decode_scheme, encode_scheme, EvalScratch, ScratchPool,
};
use crate::sra::{SiteOrder, Sra};
use crate::RngAdapter;

/// Which crossover operator GRA uses. The paper uses two-point; the others
/// are reproduction ablations. All variants restore gene validity by
/// completing the swap of any split gene (both parents' genes are valid, so
/// a fully-donated gene is valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrossoverOp {
    /// Single cut point.
    OnePoint,
    /// The paper's operator: two cut points, swapping either the middle
    /// segment or the two outer segments by a fair coin.
    #[default]
    TwoPoint,
    /// Per-bit mixing (ablation); invalid genes are repaired by full
    /// donation from a random parent.
    Uniform,
}

/// Configuration of the *Genetic Replication Algorithm* (Section 4).
///
/// Defaults are the paper's: `N_p = 50`, `N_g = 80`, `μ_c = 0.9`,
/// `μ_m = 0.01`, stochastic-remainder selection over the enlarged `(μ+λ)`
/// sampling space, elite re-imposition every 5 generations, and a seed
/// population of randomized SRA runs with ¼ of the bits perturbed on half of
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct GraConfig {
    /// Population size `N_p`.
    pub population_size: usize,
    /// Generations `N_g`.
    pub generations: usize,
    /// Crossover rate `μ_c`.
    pub crossover_rate: f64,
    /// Per-bit mutation rate `μ_m`.
    pub mutation_rate: f64,
    /// Offspring allocation scheme.
    pub selection: SelectionScheme,
    /// Sampling space for selection.
    pub sampling: SamplingSpace,
    /// Elite re-imposition period (0 disables elitism).
    pub elite_period: usize,
    /// Fraction of bits randomly perturbed in half of the seed population.
    pub seed_perturbation: f64,
    /// Crossover operator.
    pub crossover_op: CrossoverOp,
    /// Score each generation's offspring on multiple threads. Fitness is a
    /// pure function of the chromosome, so results are bitwise-identical to
    /// the serial path for a fixed seed. Defaults to the `parallel` cargo
    /// feature.
    pub parallel_fitness: bool,
}

impl Default for GraConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            generations: 80,
            crossover_rate: 0.9,
            mutation_rate: 0.01,
            selection: SelectionScheme::StochasticRemainder,
            sampling: SamplingSpace::Enlarged,
            elite_period: 5,
            seed_perturbation: 0.25,
            crossover_op: CrossoverOp::TwoPoint,
            parallel_fitness: cfg!(feature = "parallel"),
        }
    }
}

impl GraConfig {
    fn to_ga_config(&self) -> GaConfig {
        GaConfig::new(self.population_size, self.generations)
            .crossover_rate(self.crossover_rate)
            .mutation_rate(self.mutation_rate)
            .selection(self.selection)
            .sampling(self.sampling)
            .elite_period(self.elite_period)
    }
}

/// Result of a detailed GRA run: the decoded best scheme plus the raw GA
/// outcome (fitness history, evaluations, final population). AGRA consumes
/// the final population for its transcription step.
#[derive(Debug, Clone)]
pub struct GraRun {
    /// The best replication scheme found.
    pub scheme: ReplicationScheme,
    /// Its fitness `(D_prime − D) / D_prime`.
    pub fitness: f64,
    /// Engine-level details.
    pub outcome: GaOutcome,
}

/// The *Genetic Replication Algorithm* (Section 4).
///
/// # Examples
///
/// ```
/// use drp_algo::{Gra, GraConfig};
/// use drp_core::ReplicationAlgorithm;
/// use drp_workload::WorkloadSpec;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let problem = WorkloadSpec::paper(8, 10, 5.0, 20.0).generate(&mut rng)?;
/// let config = GraConfig { population_size: 10, generations: 15, ..GraConfig::default() };
/// let scheme = Gra::with_config(config).solve(&problem, &mut rng)?;
/// assert!(problem.savings_percent(&scheme) >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Gra {
    config: GraConfig,
    recorder: Arc<dyn Recorder>,
}

impl Default for Gra {
    fn default() -> Self {
        Self {
            config: GraConfig::default(),
            recorder: telemetry::noop(),
        }
    }
}

impl Gra {
    /// GRA with the paper's default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// GRA with an explicit configuration.
    pub fn with_config(config: GraConfig) -> Self {
        Self {
            config,
            recorder: telemetry::noop(),
        }
    }

    /// Attaches a telemetry recorder, forwarded to the underlying GA
    /// engine (`ga.generation` / `ga.crossover` / `ga.mutation` /
    /// `ga.evaluate` / `ga.selection` spans, `ga.evaluations` counter); the
    /// run itself additionally publishes a `gra.best_fitness` gauge.
    /// Recording never consumes randomness: seeded runs stay bitwise
    /// identical.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GraConfig {
        &self.config
    }

    /// Builds the seed population: `N_p` randomized-order SRA runs, with ¼
    /// of the bits of the second half randomly perturbed (validly).
    ///
    /// # Errors
    ///
    /// Propagates SRA failures (which indicate an invalid instance).
    pub fn seed_population(
        &self,
        problem: &Problem,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<BitString>> {
        let np = self.config.population_size.max(1);
        let sra = Sra::with_order(SiteOrder::Random);
        let mut population = Vec::with_capacity(np);
        for index in 0..np {
            let scheme = sra.solve(problem, rng)?;
            let mut bits = encode_scheme(problem, &scheme);
            if index >= np / 2 {
                perturb_validly(problem, &mut bits, self.config.seed_perturbation, rng);
            }
            population.push(bits);
        }
        Ok(population)
    }

    /// Full run: seed with SRA, evolve for the configured generations.
    ///
    /// # Errors
    ///
    /// Propagates seeding and engine errors.
    pub fn solve_detailed(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<GraRun> {
        let initial = self.seed_population(problem, rng)?;
        self.evolve(problem, initial, self.config.generations, rng)
    }

    /// Warm-start run: evolve a given population for `generations`. This is
    /// the paper's "mini-GRA" used after AGRA transcription and the
    /// `Current + N GRA` policies of the adaptive experiments.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty population or one whose chromosomes do
    /// not match the instance dimensions.
    pub fn evolve(
        &self,
        problem: &Problem,
        initial: Vec<BitString>,
        generations: usize,
        rng: &mut dyn RngCore,
    ) -> Result<GraRun> {
        let spec = GraSpec::new(problem, self.config.crossover_op)
            .parallel_fitness(self.config.parallel_fitness);
        let ga_config = GaConfig {
            generations,
            ..self.config.to_ga_config()
        };
        let outcome = Engine::new(ga_config)
            .with_recorder(self.recorder.clone())
            .run(&spec, initial, &mut RngAdapter(rng))
            .map_err(|e| drp_core::CoreError::InvalidInstance {
                reason: e.to_string(),
            })?;
        self.recorder
            .set_gauge("gra.best_fitness", outcome.best_fitness);
        let scheme = decode_scheme(problem, &outcome.best)?;
        Ok(GraRun {
            scheme,
            fitness: outcome.best_fitness,
            outcome,
        })
    }
}

impl ReplicationAlgorithm for Gra {
    fn name(&self) -> &str {
        "GRA"
    }

    fn solve(&self, problem: &Problem, rng: &mut dyn RngCore) -> Result<ReplicationScheme> {
        Ok(self.solve_detailed(problem, rng)?.scheme)
    }
}

/// Flips up to `fraction` of the bits at random positions, reverting any
/// flip that would violate the storage or primary constraint.
fn perturb_validly(problem: &Problem, bits: &mut BitString, fraction: f64, rng: &mut dyn RngCore) {
    let n = problem.num_objects();
    let mut used = used_per_site(problem, bits);
    let flips = (bits.len() as f64 * fraction.clamp(0.0, 1.0)) as usize;
    for _ in 0..flips {
        let bit = rng.random_range(0..bits.len());
        try_flip(problem, bits, &mut used, bit, n);
    }
}

/// Storage used per site under a chromosome.
fn used_per_site(problem: &Problem, bits: &BitString) -> Vec<u64> {
    let n = problem.num_objects();
    let mut used = vec![0u64; problem.num_sites()];
    for one in bits.iter_ones() {
        used[one / n] += problem.object_size(drp_core::ObjectId::new(one % n));
    }
    used
}

/// Flips `bit` if the result satisfies both constraints; returns whether the
/// flip stuck.
fn try_flip(
    problem: &Problem,
    bits: &mut BitString,
    used: &mut [u64],
    bit: usize,
    n: usize,
) -> bool {
    let (i, k) = (bit / n, bit % n);
    let object = drp_core::ObjectId::new(k);
    let size = problem.object_size(object);
    if bits.get(bit) {
        // 1 → 0: never drop the primary copy.
        if problem.primary(object) == SiteId::new(i) {
            return false;
        }
        bits.set(bit, false);
        used[i] -= size;
        true
    } else {
        // 0 → 1: respect the capacity.
        if used[i] + size > problem.capacity(SiteId::new(i)) {
            return false;
        }
        bits.set(bit, true);
        used[i] += size;
        true
    }
}

/// Scores every chromosome in `population`, writing fitness into the paired
/// slot — the standalone form of GRA's fitness function (including the
/// paper's reset-to-primary-only rule for negative fitness).
///
/// With `parallel` set, chromosomes are scored on the persistent
/// [`WorkerPool`](drp_core::pool::WorkerPool) over disjoint chunks, each
/// with its own scratch buffers — the pool threads are spawned once per
/// process and reused across every generation, so no spawn cost recurs.
/// Fitness is a pure per-chromosome function and chunk boundaries depend
/// only on the population length, so the results (values *and* repairs)
/// are bitwise-identical to the serial path — callers may flip `parallel`
/// freely without perturbing a seeded run.
pub fn evaluate_population(problem: &Problem, population: &mut [(BitString, f64)], parallel: bool) {
    let primary_only = encode_scheme(problem, &ReplicationScheme::primary_only(problem));
    let scratch = ScratchPool::new(problem);
    evaluate_population_with(
        problem,
        &primary_only,
        population,
        &scratch,
        WorkerPool::global(),
        parallel,
    );
}

/// [`evaluate_population`] against caller-owned worker and scratch pools
/// — the form benchmarks and embedders use to pin the thread count
/// (e.g. `WorkerPool::new(1)` for an honest serial baseline) and to
/// amortize scratch/mirror construction across calls.
///
/// Results are bitwise identical for any pool size, including 1.
pub fn evaluate_population_pooled(
    problem: &Problem,
    population: &mut [(BitString, f64)],
    scratch: &ScratchPool,
    pool: &WorkerPool,
) {
    let primary_only = encode_scheme(problem, &ReplicationScheme::primary_only(problem));
    evaluate_population_with(problem, &primary_only, population, scratch, pool, true);
}

/// Don't fan out below this many chromosomes: hand-off overhead beats the
/// win on tiny batches.
pub(crate) const MIN_PARALLEL_BATCH: usize = 8;

fn evaluate_population_with(
    problem: &Problem,
    primary_only: &BitString,
    population: &mut [(BitString, f64)],
    scratch_pool: &ScratchPool,
    pool: &WorkerPool,
    parallel: bool,
) {
    let workers = if parallel && population.len() >= MIN_PARALLEL_BATCH {
        pool.threads().min(population.len())
    } else {
        1
    };
    if workers <= 1 {
        let mut scratch = scratch_pool.checkout(problem);
        for (chromosome, fitness) in population.iter_mut() {
            *fitness = score_chromosome(problem, primary_only, chromosome, &mut scratch);
        }
        scratch_pool.restore(scratch);
        return;
    }
    // One contiguous chunk per worker — the coarsest grain that still
    // spreads the generation, so per-task hand-off cost is paid `workers`
    // times, not `population` times. Chunk boundaries depend only on the
    // population length and fitness is a pure per-chromosome function, so
    // results are bitwise-identical to the serial path.
    let chunk = population.len().div_ceil(workers);
    pool.for_each_chunk_mut(population, chunk, |_, slice| {
        let mut scratch = scratch_pool.checkout(problem);
        for (chromosome, fitness) in slice.iter_mut() {
            *fitness = score_chromosome(problem, primary_only, chromosome, &mut scratch);
        }
        scratch_pool.restore(scratch);
    });
}

/// GRA fitness `(D′ − D) / D′` with the paper's negative-fitness rule:
/// chromosomes worse than primary-only are reset to it and scored 0.
fn score_chromosome(
    problem: &Problem,
    primary_only: &BitString,
    chromosome: &mut BitString,
    scratch: &mut EvalScratch,
) -> f64 {
    let d = chromosome_cost_with(problem, chromosome, scratch);
    let dp = problem.d_prime();
    if dp == 0 {
        return 0.0;
    }
    let fitness = (dp as f64 - d as f64) / dp as f64;
    if fitness < 0.0 {
        *chromosome = primary_only.clone();
        return 0.0;
    }
    fitness
}

/// [`GaSpec`] binding of the DRP for GRA.
pub(crate) struct GraSpec<'a> {
    problem: &'a Problem,
    crossover_op: CrossoverOp,
    primary_only: BitString,
    parallel: bool,
    /// Thread-shared scratch arena: built once per run, reused by every
    /// generation's fitness batch.
    scratch: ScratchPool,
}

impl<'a> GraSpec<'a> {
    pub(crate) fn new(problem: &'a Problem, crossover_op: CrossoverOp) -> Self {
        let primary_only = encode_scheme(problem, &ReplicationScheme::primary_only(problem));
        Self {
            problem,
            crossover_op,
            primary_only,
            parallel: false,
            scratch: ScratchPool::new(problem),
        }
    }

    pub(crate) fn parallel_fitness(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    fn gene_is_valid(&self, bits: &BitString, gene: usize) -> bool {
        let n = self.problem.num_objects();
        let start = gene * n;
        // Word-wise scan of the gene's contiguous bit range: sparse genes
        // cost O(n/64) word probes instead of n strided `get`s.
        let mut used = 0u64;
        for one in bits.iter_ones_in(start, start + n) {
            used += self
                .problem
                .object_size(drp_core::ObjectId::new(one - start));
        }
        used <= self.problem.capacity(SiteId::new(gene))
    }

    fn donate_gene(&self, child: &mut BitString, donor: &BitString, gene: usize) {
        let n = self.problem.num_objects();
        child.copy_range_from(donor, gene * n, (gene + 1) * n);
    }

    /// Completes the gene swap for every split gene that came out invalid.
    fn repair_boundary(&self, child: &mut BitString, donor: &BitString, cuts: &[usize]) {
        let n = self.problem.num_objects();
        for &cut in cuts {
            let gene = cut / n;
            // A cut on a gene boundary splits nothing.
            if cut % n == 0 {
                continue;
            }
            if !self.gene_is_valid(child, gene) {
                self.donate_gene(child, donor, gene);
            }
        }
    }
}

impl GaSpec for GraSpec<'_> {
    fn evaluate(&self, chromosome: &mut BitString) -> f64 {
        let mut scratch = self.scratch.checkout(self.problem);
        let fitness = score_chromosome(self.problem, &self.primary_only, chromosome, &mut scratch);
        self.scratch.restore(scratch);
        fitness
    }

    fn evaluate_batch(&self, population: &mut [(BitString, f64)]) {
        evaluate_population_with(
            self.problem,
            &self.primary_only,
            population,
            &self.scratch,
            WorkerPool::global(),
            self.parallel,
        );
    }

    fn crossover(
        &self,
        a: &BitString,
        b: &BitString,
        rng: &mut dyn RngCore,
    ) -> (BitString, BitString) {
        match self.crossover_op {
            CrossoverOp::OnePoint => {
                let len = a.len();
                if len < 2 {
                    return (a.clone(), b.clone());
                }
                let cut = rng.random_range(1..len);
                let mut ca = a.clone();
                let mut cb = b.clone();
                ca.copy_range_from(b, cut, len);
                cb.copy_range_from(a, cut, len);
                self.repair_boundary(&mut ca, b, &[cut]);
                self.repair_boundary(&mut cb, a, &[cut]);
                (ca, cb)
            }
            CrossoverOp::TwoPoint => {
                let Some((lo, hi)) = ops::random_cut_pair(a, b, rng) else {
                    return (a.clone(), b.clone());
                };
                let mut ca = a.clone();
                let mut cb = b.clone();
                if rng.random_bool(0.5) {
                    ca.copy_range_from(b, lo, hi);
                    cb.copy_range_from(a, lo, hi);
                } else {
                    ca.copy_range_from(b, 0, lo);
                    ca.copy_range_from(b, hi, a.len());
                    cb.copy_range_from(a, 0, lo);
                    cb.copy_range_from(a, hi, a.len());
                }
                self.repair_boundary(&mut ca, b, &[lo, hi]);
                self.repair_boundary(&mut cb, a, &[lo, hi]);
                (ca, cb)
            }
            CrossoverOp::Uniform => {
                let (mut ca, mut cb) = ops::uniform_crossover(a, b, rng);
                for gene in 0..self.problem.num_sites() {
                    if !self.gene_is_valid(&ca, gene) {
                        let donor = if rng.random_bool(0.5) { a } else { b };
                        self.donate_gene(&mut ca, donor, gene);
                    }
                    if !self.gene_is_valid(&cb, gene) {
                        let donor = if rng.random_bool(0.5) { a } else { b };
                        self.donate_gene(&mut cb, donor, gene);
                    }
                }
                (ca, cb)
            }
        }
    }

    fn mutate(&self, chromosome: &mut BitString, rate: f64, rng: &mut dyn RngCore) {
        let n = self.problem.num_objects();
        let mut used = used_per_site(self.problem, chromosome);
        for bit in 0..chromosome.len() {
            if rng.random_bool(rate) {
                // The paper "flips the mutated bit again" on violation —
                // try_flip simply refuses invalid flips.
                try_flip(self.problem, chromosome, &mut used, bit, n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drp_workload::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(seed: u64) -> Problem {
        WorkloadSpec::paper(8, 10, 5.0, 20.0)
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap()
    }

    fn small_config() -> GraConfig {
        GraConfig {
            population_size: 10,
            generations: 12,
            ..GraConfig::default()
        }
    }

    fn assert_valid_bits(p: &Problem, bits: &BitString) {
        decode_scheme(p, bits).expect("chromosome must satisfy both constraints");
        // Primaries present:
        for k in p.objects() {
            assert!(bits.get(p.primary(k).index() * p.num_objects() + k.index()));
        }
    }

    #[test]
    fn seed_population_is_valid_and_diverse() {
        let p = problem(1);
        let gra = Gra::with_config(small_config());
        let mut rng = StdRng::seed_from_u64(2);
        let pop = gra.seed_population(&p, &mut rng).unwrap();
        assert_eq!(pop.len(), 10);
        for bits in &pop {
            assert_valid_bits(&p, bits);
        }
        // Perturbation makes the halves differ.
        assert!(pop.iter().any(|c| c != &pop[0]));
    }

    #[test]
    fn crossover_children_are_valid() {
        let p = problem(3);
        let gra = Gra::with_config(small_config());
        let mut rng = StdRng::seed_from_u64(4);
        let pop = gra.seed_population(&p, &mut rng).unwrap();
        for op in [
            CrossoverOp::OnePoint,
            CrossoverOp::TwoPoint,
            CrossoverOp::Uniform,
        ] {
            let spec = GraSpec::new(&p, op);
            for i in 0..pop.len() - 1 {
                let (ca, cb) = spec.crossover(&pop[i], &pop[i + 1], &mut rng);
                assert_valid_bits(&p, &ca);
                assert_valid_bits(&p, &cb);
            }
        }
    }

    #[test]
    fn mutation_preserves_validity() {
        let p = problem(5);
        let spec = GraSpec::new(&p, CrossoverOp::TwoPoint);
        let mut rng = StdRng::seed_from_u64(6);
        let mut bits = encode_scheme(&p, &ReplicationScheme::primary_only(&p));
        for _ in 0..20 {
            spec.mutate(&mut bits, 0.2, &mut rng);
            assert_valid_bits(&p, &bits);
        }
    }

    #[test]
    fn evaluate_resets_negative_fitness_chromosomes() {
        // Update-heavy instance (capacity ample enough that everything fits
        // everywhere): full replication is worse than nothing.
        let p = WorkloadSpec::paper(6, 6, 200.0, 300.0)
            .generate(&mut StdRng::seed_from_u64(7))
            .unwrap();
        let spec = GraSpec::new(&p, CrossoverOp::TwoPoint);
        let full = ReplicationScheme::from_fn(&p, |_, _| true).unwrap();
        let mut bits = encode_scheme(&p, &full);
        if p.total_cost(&full) > p.d_prime() {
            let f = spec.evaluate(&mut bits);
            assert_eq!(f, 0.0);
            assert_eq!(bits, spec.primary_only);
        }
    }

    #[test]
    fn gra_beats_or_matches_sra() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = problem(9);
        let sra_scheme = Sra::new().solve(&p, &mut rng).unwrap();
        // Plant the round-robin SRA scheme in the seed population: the
        // random-order SRA seeds alone don't guarantee it's represented,
        // and best-ever tracking is only elitist over what generation 0
        // actually contains.
        let gra = Gra::with_config(small_config());
        let mut initial = gra.seed_population(&p, &mut rng).unwrap();
        initial[0] = encode_scheme(&p, &sra_scheme);
        let run = gra.evolve(&p, initial, 12, &mut rng).unwrap();
        assert!(p.total_cost(&run.scheme) <= p.total_cost(&sra_scheme));
        run.scheme.validate(&p).unwrap();
    }

    #[test]
    fn evolve_warm_start_improves_population() {
        let p = problem(10);
        let gra = Gra::with_config(small_config());
        let mut rng = StdRng::seed_from_u64(11);
        let initial = gra.seed_population(&p, &mut rng).unwrap();
        let run = gra.evolve(&p, initial, 5, &mut rng).unwrap();
        assert!(run.fitness >= 0.0);
        assert_eq!(run.outcome.history.len(), 6);
        run.scheme.validate(&p).unwrap();
    }

    #[test]
    fn parallel_fitness_matches_serial_run_exactly() {
        let p = problem(12);
        let serial = Gra::with_config(GraConfig {
            parallel_fitness: false,
            ..small_config()
        });
        let parallel = Gra::with_config(GraConfig {
            parallel_fitness: true,
            ..small_config()
        });
        let a = serial
            .solve_detailed(&p, &mut StdRng::seed_from_u64(13))
            .unwrap();
        let b = parallel
            .solve_detailed(&p, &mut StdRng::seed_from_u64(13))
            .unwrap();
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
        assert_eq!(a.outcome.final_population, b.outcome.final_population);
    }

    #[test]
    fn evaluate_population_parallel_matches_serial() {
        let p = problem(14);
        let gra = Gra::with_config(small_config());
        let mut rng = StdRng::seed_from_u64(15);
        let chromosomes = gra.seed_population(&p, &mut rng).unwrap();
        let mut serial: Vec<(BitString, f64)> =
            chromosomes.iter().cloned().map(|c| (c, 0.0)).collect();
        let mut parallel: Vec<(BitString, f64)> =
            chromosomes.into_iter().map(|c| (c, 0.0)).collect();
        evaluate_population(&p, &mut serial, false);
        evaluate_population(&p, &mut parallel, true);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn seeded_run_reports_exact_span_counts() {
        use drp_core::telemetry::InMemoryRecorder;

        let p = problem(16);
        let bare = Gra::with_config(small_config())
            .solve_detailed(&p, &mut StdRng::seed_from_u64(17))
            .unwrap();
        let recorder = Arc::new(InMemoryRecorder::new());
        let run = Gra::with_config(small_config())
            .with_recorder(recorder.clone())
            .solve_detailed(&p, &mut StdRng::seed_from_u64(17))
            .unwrap();

        // Recording must not perturb the evolution.
        assert_eq!(bare.scheme, run.scheme);
        assert_eq!(bare.fitness, run.fitness);
        assert_eq!(bare.outcome.evaluations, run.outcome.evaluations);

        // history[0] is generation 0, so evolved generations = len − 1;
        // each one closes exactly one span per sub-phase, and generation 0
        // adds one extra evaluate batch.
        let generations = (run.outcome.history.len() - 1) as u64;
        assert_eq!(recorder.span_count("ga.generation"), generations);
        assert_eq!(recorder.span_count("ga.crossover"), generations);
        assert_eq!(recorder.span_count("ga.mutation"), generations);
        assert_eq!(recorder.span_count("ga.selection"), generations);
        assert_eq!(recorder.span_count("ga.evaluate"), generations + 1);
        assert_eq!(recorder.counter("ga.evaluations"), run.outcome.evaluations);
        assert_eq!(recorder.gauge("gra.best_fitness"), Some(run.fitness));
    }

    #[test]
    fn name_and_config_access() {
        let gra = Gra::new();
        assert_eq!(gra.name(), "GRA");
        assert_eq!(gra.config().population_size, 50);
        assert_eq!(gra.config().generations, 80);
    }
}
