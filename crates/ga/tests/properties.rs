//! Property-based tests of the GA toolkit.

use drp_ga::{ops, BitString, Engine, GaConfig, GaSpec, SamplingSpace, SelectionScheme};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

proptest! {
    #[test]
    fn bitstring_set_get_flip(len in 1usize..200, indices in prop::collection::vec(0usize..200, 0..32)) {
        let mut s = BitString::zeros(len);
        for &i in indices.iter().filter(|&&i| i < len) {
            let before = s.get(i);
            s.flip(i);
            prop_assert_eq!(s.get(i), !before);
        }
        prop_assert!(s.iter_ones().all(|i| i < len));
        prop_assert_eq!(s.count_ones(), s.iter_ones().count());
    }

    #[test]
    fn crossover_conserves_locus_material(len in 3usize..128, seed in 0u64..1000) {
        // For complementary parents, every crossover child pair still holds
        // exactly one 1 per locus across the two children.
        let a = BitString::zeros(len);
        let b = BitString::from_fn(len, |_| true);
        let mut rng = StdRng::seed_from_u64(seed);
        for op in 0..3 {
            let (ca, cb) = match op {
                0 => ops::one_point_crossover(&a, &b, &mut rng),
                1 => ops::two_point_crossover(&a, &b, &mut rng),
                _ => ops::uniform_crossover(&a, &b, &mut rng),
            };
            prop_assert_eq!(ca.count_ones() + cb.count_ones(), len, "op {}", op);
            for i in 0..len {
                prop_assert_ne!(ca.get(i), cb.get(i));
            }
        }
    }

    #[test]
    fn selection_allocates_exactly_count(
        fitness in prop::collection::vec(0.0f64..1.0, 1..40),
        count in 0usize..60,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [
            SelectionScheme::Roulette,
            SelectionScheme::StochasticRemainder,
            SelectionScheme::Tournament { size: 2 },
        ] {
            let picks = scheme.allocate(&fitness, count, &mut rng);
            prop_assert_eq!(picks.len(), count);
            prop_assert!(picks.iter().all(|&i| i < fitness.len()));
        }
    }

    #[test]
    fn stochastic_remainder_respects_deterministic_floor(
        weights in prop::collection::vec(1u32..20, 2..10),
        seed in 0u64..1000,
    ) {
        // With integer-proportional fitness and count = Σ weights scaled to
        // the pool, each chromosome receives at least ⌊expected⌋ slots.
        let fitness: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        let count = 30usize;
        let total: f64 = fitness.iter().sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let picks = SelectionScheme::StochasticRemainder.allocate(&fitness, count, &mut rng);
        for (i, &f) in fitness.iter().enumerate() {
            let expected = (f * count as f64 / total).floor() as usize;
            let got = picks.iter().filter(|&&p| p == i).count();
            // One slot of slack: when the expectation lands exactly on an
            // integer, floating point can floor it either way.
            prop_assert!(
                got + 1 >= expected,
                "chromosome {} got {} < floor {} - 1",
                i, got, expected
            );
        }
    }
}

/// A spec whose fitness counts leading ones — order-sensitive, so crossover
/// geometry matters.
struct LeadingOnes;

impl GaSpec for LeadingOnes {
    fn evaluate(&self, c: &mut BitString) -> f64 {
        let mut run = 0;
        for i in 0..c.len() {
            if c.get(i) {
                run += 1;
            } else {
                break;
            }
        }
        run as f64 / c.len() as f64
    }
    fn crossover(
        &self,
        a: &BitString,
        b: &BitString,
        rng: &mut dyn RngCore,
    ) -> (BitString, BitString) {
        ops::one_point_crossover(a, b, rng)
    }
    fn mutate(&self, c: &mut BitString, rate: f64, rng: &mut dyn RngCore) {
        ops::bit_flip_mutation(c, rate, rng);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_improves_leading_ones(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let initial: Vec<BitString> =
            (0..12).map(|_| BitString::random(24, &mut rng)).collect();
        let start_best = {
            let mut best = 0.0f64;
            for c in &initial {
                let mut c = c.clone();
                best = best.max(LeadingOnes.evaluate(&mut c));
            }
            best
        };
        for sampling in [SamplingSpace::Regular, SamplingSpace::Enlarged] {
            let config = GaConfig::new(12, 30).sampling(sampling).mutation_rate(0.03);
            let outcome = Engine::new(config)
                .run(&LeadingOnes, initial.clone(), &mut rng)
                .unwrap();
            prop_assert!(outcome.best_fitness >= start_best, "{sampling:?}");
        }
    }
}
