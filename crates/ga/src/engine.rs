use std::sync::Arc;

use drp_net::telemetry::{self, Recorder};
use rand::{Rng, RngCore};

use crate::config::{GaConfig, SamplingSpace};
use crate::stats::GenerationStats;
use crate::{BitString, GaError, GaSpec, Result};

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct GaOutcome {
    /// Best chromosome found in any generation.
    pub best: BitString,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics (entry 0 is the initial population).
    pub history: Vec<GenerationStats>,
    /// Total fitness evaluations performed (the dominant cost — GRA's
    /// enlarged sampling pays up to 3× the regular space here).
    pub evaluations: u64,
    /// The final population, fittest first. AGRA's transcription step feeds
    /// an entire micro-GA population back into GRA, hence the full export.
    pub final_population: Vec<(BitString, f64)>,
}

/// The generation loop: selection, crossover, mutation, elitism.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Engine {
    config: GaConfig,
    recorder: Arc<dyn Recorder>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: GaConfig) -> Self {
        Self {
            config,
            recorder: telemetry::noop(),
        }
    }

    /// Attaches a telemetry recorder. Each generation emits a
    /// `ga.generation` span with `ga.crossover` / `ga.mutation` /
    /// `ga.evaluate` / `ga.selection` sub-phases and a `ga.evaluations`
    /// counter. Instrumentation never consumes randomness, so a seeded run
    /// is bitwise identical with any recorder armed.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Evolves `initial` for the configured number of generations.
    ///
    /// The initial population is resized to `population_size` by cycling (if
    /// too small) or truncating (if too large).
    ///
    /// # Errors
    ///
    /// * [`GaError::BadConfig`] when the configuration fails validation;
    /// * [`GaError::BadInitialPopulation`] when `initial` is empty or holds
    ///   chromosomes of differing lengths.
    pub fn run<S: GaSpec + ?Sized, R: RngCore>(
        &self,
        spec: &S,
        initial: Vec<BitString>,
        rng: &mut R,
    ) -> Result<GaOutcome> {
        self.config.validate()?;
        if initial.is_empty() {
            return Err(GaError::BadInitialPopulation {
                reason: "initial population is empty".into(),
            });
        }
        let len = initial[0].len();
        if initial.iter().any(|c| c.len() != len) {
            return Err(GaError::BadInitialPopulation {
                reason: "initial chromosomes have differing lengths".into(),
            });
        }

        let np = self.config.population_size;
        let mut evaluations: u64 = 0;
        let rec = self.recorder.as_ref();

        // Resize and evaluate generation 0. All scoring goes through
        // `evaluate_batch` so specs can parallelize; offspring are always
        // fully generated *before* the batch call, which keeps the RNG
        // stream independent of the batching strategy (evaluation itself
        // consumes no randomness).
        let mut population: Vec<(BitString, f64)> = initial
            .into_iter()
            .cycle()
            .take(np)
            .map(|c| (c, 0.0))
            .collect();
        evaluations += population.len() as u64;
        rec.add_counter("ga.evaluations", population.len() as u64);
        {
            let _span = telemetry::span(rec, "ga.evaluate");
            spec.evaluate_batch(&mut population);
        }

        let mut best_ever = population
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .cloned()
            .expect("population is non-empty");

        let mut history = Vec::with_capacity(self.config.generations + 1);
        let fitness_of = |p: &[(BitString, f64)]| p.iter().map(|(_, f)| *f).collect::<Vec<_>>();
        history.push(GenerationStats::from_population(
            0,
            &fitness_of(&population),
            best_ever.1,
        ));

        let mut stagnant = 0usize;
        for generation in 1..=self.config.generations {
            let _gen_span = telemetry::span(rec, "ga.generation");
            let mut pool: Vec<(BitString, f64)> = match self.config.sampling {
                SamplingSpace::Enlarged => {
                    let mut pool = population.clone();
                    let fresh_from = pool.len();
                    {
                        // Crossover subpopulation.
                        let _span = telemetry::span(rec, "ga.crossover");
                        let order = shuffled_indices(np, rng);
                        for pair in order.chunks_exact(2) {
                            if rng.random_bool(self.config.crossover_rate) {
                                let (c1, c2) = spec.crossover(
                                    &population[pair[0]].0,
                                    &population[pair[1]].0,
                                    rng,
                                );
                                pool.push((c1, 0.0));
                                pool.push((c2, 0.0));
                            }
                        }
                    }
                    {
                        // Mutation subpopulation.
                        let _span = telemetry::span(rec, "ga.mutation");
                        for parent in population.iter().take(np) {
                            let mut m = parent.0.clone();
                            spec.mutate(&mut m, self.config.mutation_rate, rng);
                            pool.push((m, 0.0));
                        }
                    }
                    // Parents keep their generation-(g−1) fitness; only the
                    // fresh offspring need scoring.
                    evaluations += (pool.len() - fresh_from) as u64;
                    rec.add_counter("ga.evaluations", (pool.len() - fresh_from) as u64);
                    {
                        let _span = telemetry::span(rec, "ga.evaluate");
                        spec.evaluate_batch(&mut pool[fresh_from..]);
                    }
                    pool
                }
                SamplingSpace::Regular => {
                    // Offspring replace parents in place; untouched parents
                    // survive into the pool.
                    let mut pool = population.clone();
                    {
                        let _span = telemetry::span(rec, "ga.crossover");
                        let order = shuffled_indices(np, rng);
                        for pair in order.chunks_exact(2) {
                            if rng.random_bool(self.config.crossover_rate) {
                                let (c1, c2) =
                                    spec.crossover(&pool[pair[0]].0, &pool[pair[1]].0, rng);
                                pool[pair[0]].0 = c1;
                                pool[pair[1]].0 = c2;
                            }
                        }
                    }
                    {
                        let _span = telemetry::span(rec, "ga.mutation");
                        for slot in &mut pool {
                            spec.mutate(&mut slot.0, self.config.mutation_rate, rng);
                        }
                    }
                    // Every slot mutated, so every slot is re-scored.
                    evaluations += pool.len() as u64;
                    rec.add_counter("ga.evaluations", pool.len() as u64);
                    {
                        let _span = telemetry::span(rec, "ga.evaluate");
                        spec.evaluate_batch(&mut pool);
                    }
                    pool
                }
            };

            // Track the best chromosome in the pool even if selection drops it.
            let improved = {
                let pool_best = pool
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("pool is non-empty");
                if pool_best.1 > best_ever.1 {
                    best_ever = pool_best.clone();
                    true
                } else {
                    false
                }
            };

            // Offspring allocation over the pool.
            let fitness = fitness_of(&pool);
            let picks = {
                let _span = telemetry::span(rec, "ga.selection");
                self.config.selection.allocate(&fitness, np, rng)
            };
            let mut next: Vec<(BitString, f64)> =
                picks.into_iter().map(|i| pool[i].clone()).collect();
            pool.clear();

            // Elitism: periodically re-impose the best-so-far on the worst slot.
            if self.config.elite_period > 0 && generation % self.config.elite_period == 0 {
                if let Some(worst) = next
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1 .1
                            .partial_cmp(&b.1 .1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                {
                    next[worst] = best_ever.clone();
                }
            }
            population = next;

            history.push(GenerationStats::from_population(
                generation,
                &fitness_of(&population),
                best_ever.1,
            ));

            if improved {
                stagnant = 0;
            } else {
                stagnant += 1;
                if self
                    .config
                    .stagnation_limit
                    .is_some_and(|limit| stagnant >= limit)
                {
                    break;
                }
            }
        }

        population.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(GaOutcome {
            best: best_ever.0,
            best_fitness: best_ever.1,
            history,
            evaluations,
            final_population: population,
        })
    }
}

fn shuffled_indices<R: RngCore + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, SelectionScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct OneMax;

    impl GaSpec for OneMax {
        fn evaluate(&self, c: &mut BitString) -> f64 {
            c.count_ones() as f64 / c.len() as f64
        }
        fn crossover(
            &self,
            a: &BitString,
            b: &BitString,
            rng: &mut dyn RngCore,
        ) -> (BitString, BitString) {
            ops::two_point_crossover(a, b, rng)
        }
        fn mutate(&self, c: &mut BitString, rate: f64, rng: &mut dyn RngCore) {
            ops::bit_flip_mutation(c, rate, rng);
        }
    }

    fn initial(pop: usize, len: usize, seed: u64) -> Vec<BitString> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..pop).map(|_| BitString::random(len, &mut rng)).collect()
    }

    #[test]
    fn onemax_converges_enlarged() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = Engine::new(GaConfig::new(20, 120))
            .run(&OneMax, initial(20, 40, 2), &mut rng)
            .unwrap();
        // Proportionate selection loses pressure as the population nears the
        // optimum, so we assert solid (not perfect) convergence.
        assert!(outcome.best_fitness > 0.85, "got {}", outcome.best_fitness);
        assert_eq!(outcome.history.len(), 121);
        assert_eq!(outcome.final_population.len(), 20);
    }

    #[test]
    fn onemax_converges_regular() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GaConfig::new(20, 80)
            .sampling(SamplingSpace::Regular)
            .crossover_rate(0.8);
        let outcome = Engine::new(config)
            .run(&OneMax, initial(20, 40, 3), &mut rng)
            .unwrap();
        assert!(outcome.best_fitness > 0.85, "got {}", outcome.best_fitness);
    }

    #[test]
    fn enlarged_sampling_costs_more_evaluations() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let enlarged = Engine::new(GaConfig::new(16, 10))
            .run(&OneMax, initial(16, 32, 4), &mut rng1)
            .unwrap();
        let regular = Engine::new(GaConfig::new(16, 10).sampling(SamplingSpace::Regular))
            .run(&OneMax, initial(16, 32, 4), &mut rng2)
            .unwrap();
        assert!(enlarged.evaluations > regular.evaluations);
    }

    #[test]
    fn best_ever_is_monotone() {
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = Engine::new(GaConfig::new(10, 30))
            .run(&OneMax, initial(10, 24, 6), &mut rng)
            .unwrap();
        for w in outcome.history.windows(2) {
            assert!(w[1].best_ever >= w[0].best_ever);
        }
        assert_eq!(
            outcome.best_fitness,
            outcome.history.last().unwrap().best_ever
        );
    }

    #[test]
    fn small_initial_population_is_cycled() {
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = Engine::new(GaConfig::new(12, 5))
            .run(&OneMax, initial(3, 16, 9), &mut rng)
            .unwrap();
        assert_eq!(outcome.final_population.len(), 12);
    }

    #[test]
    fn empty_population_is_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let err = Engine::new(GaConfig::new(12, 5)).run(&OneMax, vec![], &mut rng);
        assert!(matches!(err, Err(GaError::BadInitialPopulation { .. })));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let pop = vec![BitString::zeros(4), BitString::zeros(5)];
        let err = Engine::new(GaConfig::new(2, 5)).run(&OneMax, pop, &mut rng);
        assert!(matches!(err, Err(GaError::BadInitialPopulation { .. })));
    }

    #[test]
    fn stagnation_limit_stops_early() {
        let mut rng = StdRng::seed_from_u64(8);
        // All-ones start: nothing can improve, so it stops after the limit.
        let pop = vec![BitString::from_fn(16, |_| true); 6];
        let outcome = Engine::new(GaConfig::new(6, 1000).stagnation_limit(3))
            .run(&OneMax, pop, &mut rng)
            .unwrap();
        assert!(outcome.history.len() <= 6);
        assert_eq!(outcome.best_fitness, 1.0);
    }

    #[test]
    fn elitism_preserves_best_in_population() {
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = Engine::new(GaConfig::new(10, 20).elite_period(1))
            .run(&OneMax, initial(10, 24, 14), &mut rng)
            .unwrap();
        // With per-generation elitism the final population contains best_ever.
        let best_in_pop = outcome
            .final_population
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(best_in_pop, outcome.best_fitness);
    }

    /// OneMax with a batch override that scores in reverse order — must be
    /// indistinguishable from the default serial loop.
    struct ReversedBatch;

    impl GaSpec for ReversedBatch {
        fn evaluate(&self, c: &mut BitString) -> f64 {
            OneMax.evaluate(c)
        }
        fn crossover(
            &self,
            a: &BitString,
            b: &BitString,
            rng: &mut dyn RngCore,
        ) -> (BitString, BitString) {
            OneMax.crossover(a, b, rng)
        }
        fn mutate(&self, c: &mut BitString, rate: f64, rng: &mut dyn RngCore) {
            OneMax.mutate(c, rate, rng);
        }
        fn evaluate_batch(&self, population: &mut [(BitString, f64)]) {
            for (c, f) in population.iter_mut().rev() {
                *f = self.evaluate(c);
            }
        }
    }

    #[test]
    fn batch_override_matches_default_exactly() {
        for sampling in [SamplingSpace::Enlarged, SamplingSpace::Regular] {
            let config = GaConfig::new(14, 25).sampling(sampling);
            let mut rng1 = StdRng::seed_from_u64(31);
            let mut rng2 = StdRng::seed_from_u64(31);
            let base = Engine::new(config.clone())
                .run(&OneMax, initial(14, 32, 32), &mut rng1)
                .unwrap();
            let batched = Engine::new(config)
                .run(&ReversedBatch, initial(14, 32, 32), &mut rng2)
                .unwrap();
            assert_eq!(base.best, batched.best);
            assert_eq!(base.best_fitness, batched.best_fitness);
            assert_eq!(base.evaluations, batched.evaluations);
            assert_eq!(base.final_population, batched.final_population);
        }
    }

    #[test]
    fn recorder_counts_match_engine_accounting_and_preserve_determinism() {
        use drp_net::telemetry::InMemoryRecorder;

        for sampling in [SamplingSpace::Enlarged, SamplingSpace::Regular] {
            let config = GaConfig::new(14, 25).sampling(sampling);
            let mut rng1 = StdRng::seed_from_u64(77);
            let mut rng2 = StdRng::seed_from_u64(77);
            let bare = Engine::new(config.clone())
                .run(&OneMax, initial(14, 32, 78), &mut rng1)
                .unwrap();
            let recorder = Arc::new(InMemoryRecorder::new());
            let recorded = Engine::new(config)
                .with_recorder(recorder.clone())
                .run(&OneMax, initial(14, 32, 78), &mut rng2)
                .unwrap();

            // Instrumentation must not perturb the run in any way.
            assert_eq!(bare.best, recorded.best);
            assert_eq!(bare.evaluations, recorded.evaluations);
            assert_eq!(bare.final_population, recorded.final_population);

            // Exact, deterministic span/counter accounting: one generation
            // span per evolved generation, one evaluate span per batch
            // (generation 0 included), evaluations counter equal to the
            // engine's own tally.
            let generations = (recorded.history.len() - 1) as u64;
            assert_eq!(recorder.span_count("ga.generation"), generations);
            assert_eq!(recorder.span_count("ga.evaluate"), generations + 1);
            assert_eq!(recorder.span_count("ga.crossover"), generations);
            assert_eq!(recorder.span_count("ga.mutation"), generations);
            assert_eq!(recorder.span_count("ga.selection"), generations);
            assert_eq!(recorder.counter("ga.evaluations"), recorded.evaluations);
        }
    }

    #[test]
    fn tournament_selection_also_converges() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = GaConfig::new(20, 40).selection(SelectionScheme::Tournament { size: 3 });
        let outcome = Engine::new(config)
            .run(&OneMax, initial(20, 32, 22), &mut rng)
            .unwrap();
        assert!(outcome.best_fitness > 0.85);
    }
}
