use rand::RngCore;

/// A fixed-length bit string, the chromosome representation of both GRA and
/// AGRA.
///
/// Bits are stored in 64-bit words. Indexing is little-endian within words;
/// callers only see flat bit indices `0..len`.
///
/// # Examples
///
/// ```
/// use drp_ga::BitString;
///
/// let mut c = BitString::zeros(10);
/// c.set(3, true);
/// c.flip(9);
/// assert!(c.get(3) && c.get(9) && !c.get(0));
/// assert_eq!(c.count_ones(), 2);
/// assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![3, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitString {
    len: usize,
    words: Vec<u64>,
}

impl BitString {
    /// An all-zero string of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64).max(1)],
        }
    }

    /// A uniformly random string of `len` bits.
    pub fn random<R: RngCore + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut s = Self::zeros(len);
        for w in &mut s.words {
            *w = rng.next_u64();
        }
        s.mask_tail();
        s
    }

    /// Builds a string from a predicate over bit indices.
    pub fn from_fn<F: FnMut(usize) -> bool>(len: usize, mut f: F) -> Self {
        let mut s = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                s.set(i, true);
            }
        }
        s
    }

    fn mask_tail(&mut self) {
        let used = self.len % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.len == 0 {
            self.words.iter_mut().for_each(|w| *w = 0);
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Inverts bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index out of range");
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing little-endian words; bits past `len` are zero.
    ///
    /// Exposed so word-granular consumers (popcount scans, SoA decoders)
    /// can stream the chromosome 64 genes at a time without per-bit
    /// [`get`](Self::get) probes.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits within the half-open range `[start, end)` —
    /// a masked popcount, O(range/64).
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `end > len`.
    pub fn count_ones_in(&self, start: usize, end: usize) -> usize {
        assert!(start <= end && end <= self.len, "bad bit range");
        if start == end {
            return 0;
        }
        let head = u64::MAX << (start % 64);
        let tail = u64::MAX >> (63 - (end - 1) % 64);
        let (first, last) = (start / 64, (end - 1) / 64);
        if first == last {
            return (self.words[first] & head & tail).count_ones() as usize;
        }
        let mut total = (self.words[first] & head).count_ones() as usize;
        for &w in &self.words[first + 1..last] {
            total += w.count_ones() as usize;
        }
        total + (self.words[last] & tail).count_ones() as usize
    }

    /// Iterator over the indices of set bits within `[start, end)`,
    /// ascending. Word-wise: zero words are skipped 64 bits at a time.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or `end > len`.
    pub fn iter_ones_in(&self, start: usize, end: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(start <= end && end <= self.len, "bad bit range");
        let first_word = start / 64;
        let end_word = end.div_ceil(64).max(first_word);
        self.words[first_word..end_word]
            .iter()
            .enumerate()
            .flat_map(move |(wi, &word)| {
                let base = (first_word + wi) * 64;
                let mut bits = word;
                if base < start {
                    bits &= u64::MAX << (start - base);
                }
                if base + 64 > end {
                    bits &= u64::MAX.checked_shr((base + 64 - end) as u32).unwrap_or(0);
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(base + tz)
                })
            })
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// Copies bits `range` from `other` into `self`; both strings must have
    /// the same length. This is the primitive behind crossover operators.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or an out-of-range window.
    pub fn copy_range_from(&mut self, other: &BitString, start: usize, end: usize) {
        assert_eq!(self.len, other.len, "length mismatch");
        assert!(start <= end && end <= self.len, "bad range");
        // Bit-by-bit is fine: ranges are short relative to evaluation cost.
        for i in start..end {
            self.set(i, other.get(i));
        }
    }

    /// Hamming distance to another string of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn hamming(&self, other: &BitString) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_set_get() {
        let mut s = BitString::zeros(100);
        assert_eq!(s.len(), 100);
        assert_eq!(s.count_ones(), 0);
        s.set(0, true);
        s.set(63, true);
        s.set(64, true);
        s.set(99, true);
        assert_eq!(s.count_ones(), 4);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 99]);
        s.set(63, false);
        assert!(!s.get(63));
    }

    #[test]
    fn random_masks_tail_bits() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1, 63, 64, 65, 130] {
            let s = BitString::random(len, &mut rng);
            assert!(s.iter_ones().all(|i| i < len), "len {len}");
        }
    }

    #[test]
    fn from_fn_matches_predicate() {
        let s = BitString::from_fn(10, |i| i % 3 == 0);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn flip_toggles() {
        let mut s = BitString::zeros(5);
        s.flip(2);
        assert!(s.get(2));
        s.flip(2);
        assert!(!s.get(2));
    }

    #[test]
    fn copy_range() {
        let a = BitString::from_fn(8, |_| true);
        let mut b = BitString::zeros(8);
        b.copy_range_from(&a, 2, 5);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn hamming_distance() {
        let a = BitString::from_fn(8, |i| i < 4);
        let b = BitString::from_fn(8, |i| i >= 4);
        assert_eq!(a.hamming(&b), 8);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn out_of_range_get_panics() {
        BitString::zeros(4).get(4);
    }

    #[test]
    fn ranged_scans_match_per_bit_probes() {
        let mut rng = StdRng::seed_from_u64(11);
        for len in [1, 63, 64, 65, 130, 200] {
            let s = BitString::random(len, &mut rng);
            for start in [0, 1, len / 3, len / 2, len.saturating_sub(1), len] {
                for end in [start, (start + 7).min(len), (start + 64).min(len), len] {
                    let probe: Vec<usize> = (start..end).filter(|&i| s.get(i)).collect();
                    assert_eq!(
                        s.iter_ones_in(start, end).collect::<Vec<_>>(),
                        probe,
                        "len {len} range [{start}, {end})"
                    );
                    assert_eq!(
                        s.count_ones_in(start, end),
                        probe.len(),
                        "len {len} range [{start}, {end})"
                    );
                }
            }
            assert_eq!(s.count_ones_in(0, len), s.count_ones());
            assert_eq!(
                s.iter_ones_in(0, len).collect::<Vec<_>>(),
                s.iter_ones().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn words_expose_clean_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = BitString::random(70, &mut rng);
        let popcnt: usize = s.words().iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(popcnt, s.count_ones(), "tail bits must be zero");
        assert_eq!(s.words().len(), 2);
    }

    #[test]
    fn empty_string_is_consistent() {
        let s = BitString::zeros(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().count(), 0);
    }
}
