//! Generic crossover and mutation building blocks.
//!
//! These operate on raw [`BitString`]s with no notion of validity; problem
//! specs layer their repair rules on top (e.g. GRA's gene-boundary repair
//! and constraint-checked mutation live in `drp-algo`).

use rand::{Rng, RngCore};

use crate::BitString;

/// One-point crossover: children swap the suffix starting at a random cut.
/// AGRA uses this with equal probability of swapping either side, which is
/// equivalent up to child order.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn one_point_crossover<R: RngCore + ?Sized>(
    a: &BitString,
    b: &BitString,
    rng: &mut R,
) -> (BitString, BitString) {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let len = a.len();
    if len < 2 {
        return (a.clone(), b.clone());
    }
    let cut = rng.random_range(1..len);
    let mut child_a = a.clone();
    let mut child_b = b.clone();
    child_a.copy_range_from(b, cut, len);
    child_b.copy_range_from(a, cut, len);
    (child_a, child_b)
}

/// Two-point crossover as used by GRA: two random cut points are drawn and
/// either the middle segment or the two outer segments are swapped, decided
/// by a fair coin.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn two_point_crossover<R: RngCore + ?Sized>(
    a: &BitString,
    b: &BitString,
    rng: &mut R,
) -> (BitString, BitString) {
    let (lo, hi) = match random_cut_pair(a, b, rng) {
        Some(pair) => pair,
        None => return (a.clone(), b.clone()),
    };
    let mut child_a = a.clone();
    let mut child_b = b.clone();
    if rng.random_bool(0.5) {
        // Swap the middle segment.
        child_a.copy_range_from(b, lo, hi);
        child_b.copy_range_from(a, lo, hi);
    } else {
        // Swap the outer segments.
        child_a.copy_range_from(b, 0, lo);
        child_a.copy_range_from(b, hi, a.len());
        child_b.copy_range_from(a, 0, lo);
        child_b.copy_range_from(a, hi, a.len());
    }
    (child_a, child_b)
}

/// Draws the two distinct cut points used by [`two_point_crossover`],
/// exposed so specs with repair rules (GRA) can reuse the same geometry.
///
/// Returns `None` when the strings are too short to cut twice.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn random_cut_pair<R: RngCore + ?Sized>(
    a: &BitString,
    b: &BitString,
    rng: &mut R,
) -> Option<(usize, usize)> {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let len = a.len();
    if len < 3 {
        return None;
    }
    let x = rng.random_range(1..len);
    let mut y = rng.random_range(1..len);
    while y == x {
        y = rng.random_range(1..len);
    }
    Some((x.min(y), x.max(y)))
}

/// Uniform crossover (ablation operator): each bit comes from either parent
/// with probability ½.
///
/// # Panics
///
/// Panics if the parents have different lengths.
pub fn uniform_crossover<R: RngCore + ?Sized>(
    a: &BitString,
    b: &BitString,
    rng: &mut R,
) -> (BitString, BitString) {
    assert_eq!(a.len(), b.len(), "parents must have equal length");
    let mut child_a = a.clone();
    let mut child_b = b.clone();
    for i in 0..a.len() {
        if rng.random_bool(0.5) {
            child_a.set(i, b.get(i));
            child_b.set(i, a.get(i));
        }
    }
    (child_a, child_b)
}

/// Bit-flip mutation: flips every bit independently with probability `rate`.
/// Returns the flipped indices so callers can repair constraint violations
/// (GRA re-flips offending bits).
///
/// # Panics
///
/// Panics if `rate` is not in `[0, 1]`.
pub fn bit_flip_mutation<R: RngCore + ?Sized>(
    c: &mut BitString,
    rate: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&rate),
        "mutation rate must be in [0, 1]"
    );
    let mut flipped = Vec::new();
    for i in 0..c.len() {
        if rng.random_bool(rate) {
            c.flip(i);
            flipped.push(i);
        }
    }
    flipped
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn parents(len: usize) -> (BitString, BitString) {
        (
            BitString::from_fn(len, |_| false),
            BitString::from_fn(len, |_| true),
        )
    }

    #[test]
    fn one_point_children_partition_parents() {
        let (a, b) = parents(20);
        let (ca, cb) = one_point_crossover(&a, &b, &mut rng());
        for i in 0..20 {
            // Each locus is exchanged or not, but the pair always carries
            // exactly one 0 and one 1.
            assert_ne!(ca.get(i), cb.get(i));
        }
        assert!(ca.count_ones() > 0 && ca.count_ones() < 20);
    }

    #[test]
    fn two_point_children_partition_parents() {
        let (a, b) = parents(30);
        for _ in 0..20 {
            let (ca, cb) = two_point_crossover(&a, &b, &mut rng());
            assert_eq!(ca.count_ones() + cb.count_ones(), 30);
        }
    }

    #[test]
    fn two_point_swaps_a_contiguous_or_complementary_region() {
        let (a, b) = parents(30);
        let (ca, _) = two_point_crossover(&a, &b, &mut rng());
        // The ones in ca (inherited from b) form either one run or a prefix
        // plus suffix.
        let ones: Vec<usize> = ca.iter_ones().collect();
        if !ones.is_empty() {
            let contiguous = ones.windows(2).all(|w| w[1] == w[0] + 1);
            let wraps = ones[0] == 0 && *ones.last().unwrap() == 29;
            assert!(contiguous || wraps);
        }
    }

    #[test]
    fn short_strings_pass_through() {
        let (a, b) = parents(1);
        let (ca, cb) = one_point_crossover(&a, &b, &mut rng());
        assert_eq!((ca, cb), (a.clone(), b.clone()));
        let (a2, b2) = parents(2);
        let (ca, cb) = two_point_crossover(&a2, &b2, &mut rng());
        assert_eq!((ca, cb), (a2, b2));
    }

    #[test]
    fn uniform_mixes_parents() {
        let (a, b) = parents(64);
        let (ca, cb) = uniform_crossover(&a, &b, &mut rng());
        assert_eq!(ca.count_ones() + cb.count_ones(), 64);
        assert!(ca.count_ones() > 10 && ca.count_ones() < 54);
    }

    #[test]
    fn mutation_reports_flips_and_respects_rate_bounds() {
        let mut c = BitString::zeros(100);
        let flipped = bit_flip_mutation(&mut c, 1.0, &mut rng());
        assert_eq!(flipped.len(), 100);
        assert_eq!(c.count_ones(), 100);
        let untouched = bit_flip_mutation(&mut c, 0.0, &mut rng());
        assert!(untouched.is_empty());
        assert_eq!(c.count_ones(), 100);
    }

    #[test]
    fn cut_pair_is_ordered_and_in_range() {
        let (a, b) = parents(50);
        for _ in 0..100 {
            let (lo, hi) = random_cut_pair(&a, &b, &mut rng()).unwrap();
            assert!(lo < hi && lo >= 1 && hi < 50);
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_parents_panic() {
        let a = BitString::zeros(4);
        let b = BitString::zeros(5);
        one_point_crossover(&a, &b, &mut rng());
    }
}
