use rand::RngCore;

use crate::BitString;

/// Problem binding for the GA engine: fitness plus the (possibly repairing)
/// genetic operators.
///
/// * [`evaluate`](Self::evaluate) receives `&mut` access so specs can
///   implement the paper's "negative fitness resets the chromosome to the
///   initial allocation" rule in place.
/// * [`crossover`](Self::crossover) and [`mutate`](Self::mutate) own their
///   validity story: the engine never repairs chromosomes itself. The engine
///   decides *whether* a couple crosses (its crossover rate) and passes the
///   per-bit mutation rate down.
pub trait GaSpec {
    /// Fitness of a chromosome, higher is better, expected in `[0, 1]`
    /// (selection tolerates any non-negative value). May rewrite the
    /// chromosome (repair-on-evaluate).
    fn evaluate(&self, chromosome: &mut BitString) -> f64;

    /// Produces two children from two parents.
    fn crossover(
        &self,
        a: &BitString,
        b: &BitString,
        rng: &mut dyn RngCore,
    ) -> (BitString, BitString);

    /// Mutates a chromosome in place, flipping bits with probability `rate`.
    fn mutate(&self, chromosome: &mut BitString, rate: f64, rng: &mut dyn RngCore);
}
