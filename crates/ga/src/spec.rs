use rand::RngCore;

use crate::BitString;

/// Problem binding for the GA engine: fitness plus the (possibly repairing)
/// genetic operators.
///
/// * [`evaluate`](Self::evaluate) receives `&mut` access so specs can
///   implement the paper's "negative fitness resets the chromosome to the
///   initial allocation" rule in place.
/// * [`crossover`](Self::crossover) and [`mutate`](Self::mutate) own their
///   validity story: the engine never repairs chromosomes itself. The engine
///   decides *whether* a couple crosses (its crossover rate) and passes the
///   per-bit mutation rate down.
pub trait GaSpec {
    /// Fitness of a chromosome, higher is better, expected in `[0, 1]`
    /// (selection tolerates any non-negative value). May rewrite the
    /// chromosome (repair-on-evaluate).
    fn evaluate(&self, chromosome: &mut BitString) -> f64;

    /// Scores a batch of chromosomes, writing each fitness into the paired
    /// slot. The engine funnels *all* evaluations through this hook, so
    /// specs can override it with scratch-reusing or multi-threaded
    /// implementations; every override must stay observationally identical
    /// to the default serial loop (same fitness values, same repairs), since
    /// engine results for a fixed seed must not depend on the batch
    /// strategy.
    fn evaluate_batch(&self, population: &mut [(BitString, f64)]) {
        for (chromosome, fitness) in population.iter_mut() {
            *fitness = self.evaluate(chromosome);
        }
    }

    /// Produces two children from two parents.
    fn crossover(
        &self,
        a: &BitString,
        b: &BitString,
        rng: &mut dyn RngCore,
    ) -> (BitString, BitString);

    /// Mutates a chromosome in place, flipping bits with probability `rate`.
    fn mutate(&self, chromosome: &mut BitString, rate: f64, rng: &mut dyn RngCore);
}
