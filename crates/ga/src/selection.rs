use rand::{Rng, RngCore};

/// How offspring slots are allocated from a fitness-evaluated pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SelectionScheme {
    /// Holland's SGA roulette wheel: each slot is sampled independently with
    /// probability proportional to fitness. Simple but high sampling error.
    Roulette,
    /// The *stochastic remainder* technique the paper adopts: each
    /// chromosome deterministically receives `⌊f_i / f̄⌋` slots; the
    /// remaining slots are raffled on a roulette wheel over the fractional
    /// parts. Low sampling error.
    StochasticRemainder,
    /// Tournament selection (reproduction-study ablation, not used by the
    /// paper): each slot goes to the best of `size` uniformly drawn
    /// contestants.
    Tournament {
        /// Contestants per tournament (≥ 1).
        size: usize,
    },
}

impl SelectionScheme {
    /// Allocates `count` slots over a pool with the given fitness values,
    /// returning pool indices (with repetition).
    ///
    /// Fitness values must be non-negative; if they sum to zero the
    /// allocation degenerates to uniform random choice.
    ///
    /// # Panics
    ///
    /// Panics if `fitness` is empty and `count > 0`, or if a tournament size
    /// of 0 is configured.
    pub fn allocate<R: RngCore + ?Sized>(
        &self,
        fitness: &[f64],
        count: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        if count == 0 {
            return Vec::new();
        }
        assert!(!fitness.is_empty(), "cannot select from an empty pool");
        let total: f64 = fitness.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return (0..count)
                .map(|_| rng.random_range(0..fitness.len()))
                .collect();
        }
        match *self {
            SelectionScheme::Roulette => (0..count)
                .map(|_| roulette_spin(fitness, total, rng))
                .collect(),
            SelectionScheme::StochasticRemainder => {
                stochastic_remainder(fitness, total, count, rng)
            }
            SelectionScheme::Tournament { size } => {
                assert!(size >= 1, "tournament size must be at least 1");
                (0..count)
                    .map(|_| {
                        (0..size)
                            .map(|_| rng.random_range(0..fitness.len()))
                            .max_by(|&a, &b| {
                                fitness[a]
                                    .partial_cmp(&fitness[b])
                                    .unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .expect("size >= 1")
                    })
                    .collect()
            }
        }
    }
}

fn roulette_spin<R: RngCore + ?Sized>(weights: &[f64], total: f64, rng: &mut R) -> usize {
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1 // floating-point slack lands on the last entry
}

fn stochastic_remainder<R: RngCore + ?Sized>(
    fitness: &[f64],
    total: f64,
    count: usize,
    rng: &mut R,
) -> Vec<usize> {
    // Expected slot share of chromosome i is f_i / mean(f) scaled so the
    // expectations sum exactly to `count`.
    let scale = count as f64 / total;
    let mut picks = Vec::with_capacity(count);
    let mut fractions = Vec::with_capacity(fitness.len());
    for (i, &f) in fitness.iter().enumerate() {
        let expected = f * scale;
        let whole = expected.floor() as usize;
        for _ in 0..whole {
            picks.push(i);
        }
        fractions.push(expected - expected.floor());
    }
    // Deterministic part may overshoot by rounding only when count is tiny;
    // truncate defensively, then raffle the remaining slots.
    picks.truncate(count);
    let frac_total: f64 = fractions.iter().sum();
    while picks.len() < count {
        let pick = if frac_total > 0.0 {
            roulette_spin(&fractions, frac_total, rng)
        } else {
            rng.random_range(0..fitness.len())
        };
        picks.push(pick);
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn stochastic_remainder_allocates_deterministic_part() {
        // Fitness 3:1 over 4 slots → expectations 3 and 1, fully integral.
        let picks = SelectionScheme::StochasticRemainder.allocate(&[3.0, 1.0], 4, &mut rng());
        assert_eq!(picks.iter().filter(|&&i| i == 0).count(), 3);
        assert_eq!(picks.iter().filter(|&&i| i == 1).count(), 1);
    }

    #[test]
    fn stochastic_remainder_has_low_sampling_error() {
        // Expectation of index 0 is 2.5 of 5 slots → it gets 2 or 3, never
        // 0 or 5 (which plain roulette could produce).
        for seed in 0..50 {
            let mut r = StdRng::seed_from_u64(seed);
            let picks = SelectionScheme::StochasticRemainder.allocate(&[1.0, 1.0], 5, &mut r);
            let zeros = picks.iter().filter(|&&i| i == 0).count();
            assert!((2..=3).contains(&zeros), "seed {seed}: {zeros}");
        }
    }

    #[test]
    fn roulette_respects_proportions_statistically() {
        let mut r = rng();
        let picks = SelectionScheme::Roulette.allocate(&[9.0, 1.0], 10_000, &mut r);
        let zeros = picks.iter().filter(|&&i| i == 0).count();
        assert!((8500..=9500).contains(&zeros), "{zeros}");
    }

    #[test]
    fn tournament_prefers_the_fit() {
        let mut r = rng();
        let picks =
            SelectionScheme::Tournament { size: 3 }.allocate(&[0.1, 0.9, 0.5], 1000, &mut r);
        let best = picks.iter().filter(|&&i| i == 1).count();
        let worst = picks.iter().filter(|&&i| i == 0).count();
        assert!(best > 500 && worst < 200, "best={best} worst={worst}");
    }

    #[test]
    fn zero_fitness_degenerates_to_uniform() {
        let mut r = rng();
        let picks = SelectionScheme::StochasticRemainder.allocate(&[0.0, 0.0], 100, &mut r);
        assert_eq!(picks.len(), 100);
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn zero_count_is_empty() {
        assert!(SelectionScheme::Roulette
            .allocate(&[1.0], 0, &mut rng())
            .is_empty());
    }

    #[test]
    fn allocation_always_fills_count() {
        let mut r = rng();
        for scheme in [
            SelectionScheme::Roulette,
            SelectionScheme::StochasticRemainder,
            SelectionScheme::Tournament { size: 2 },
        ] {
            let picks = scheme.allocate(&[0.3, 0.9, 0.05, 0.4], 17, &mut r);
            assert_eq!(picks.len(), 17);
            assert!(picks.iter().all(|&i| i < 4));
        }
    }
}
