/// Per-generation fitness statistics, recorded by the engine for
/// convergence plots and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    /// Generation number, 0 being the initial population.
    pub generation: usize,
    /// Best fitness in the population.
    pub best: f64,
    /// Mean fitness.
    pub mean: f64,
    /// Worst fitness.
    pub worst: f64,
    /// Best fitness seen in any generation up to this one.
    pub best_ever: f64,
}

impl GenerationStats {
    pub(crate) fn from_population(generation: usize, fitness: &[f64], best_ever: f64) -> Self {
        let best = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let worst = fitness.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = fitness.iter().sum::<f64>() / fitness.len() as f64;
        Self {
            generation,
            best,
            mean,
            worst,
            best_ever,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_correct() {
        let s = GenerationStats::from_population(3, &[0.2, 0.8, 0.5], 0.9);
        assert_eq!(s.generation, 3);
        assert_eq!(s.best, 0.8);
        assert_eq!(s.worst, 0.2);
        assert!((s.mean - 0.5).abs() < 1e-12);
        assert_eq!(s.best_ever, 0.9);
    }
}
