use crate::{GaError, Result, SelectionScheme};

/// Which pool competes for the next generation's slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingSpace {
    /// Offspring replace their parents in place (parents not subjected to an
    /// operator survive into the pool). AGRA's choice — cheapest in fitness
    /// evaluations.
    Regular,
    /// The `(μ+λ)` enlarged space of evolution strategies: parents, the
    /// crossover subpopulation and the mutation subpopulation all compete.
    /// GRA's choice — up to 3× the evaluations, better exploration.
    Enlarged,
}

/// Engine parameters.
///
/// Defaults (via [`GaConfig::new`]) follow the paper's GRA settings except
/// for sizes, which are always explicit: crossover rate 0.9, mutation rate
/// 0.01, stochastic-remainder selection, enlarged sampling, elite re-imposed
/// every 5 generations.
///
/// # Examples
///
/// ```
/// use drp_ga::{GaConfig, SamplingSpace, SelectionScheme};
///
/// let config = GaConfig::new(50, 80)
///     .crossover_rate(0.8)
///     .mutation_rate(0.02)
///     .sampling(SamplingSpace::Regular)
///     .selection(SelectionScheme::Roulette)
///     .elite_period(5);
/// assert_eq!(config.population_size, 50);
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Number of chromosomes per generation (`N_p`).
    pub population_size: usize,
    /// Number of generations to evolve (`N_g`).
    pub generations: usize,
    /// Probability that a paired couple undergoes crossover (`μ_c`).
    pub crossover_rate: f64,
    /// Per-bit flip probability (`μ_m`).
    pub mutation_rate: f64,
    /// Offspring allocation scheme.
    pub selection: SelectionScheme,
    /// Pool competing for next-generation slots.
    pub sampling: SamplingSpace,
    /// Re-impose the best-so-far chromosome on the population every this
    /// many generations (0 disables elitism). The paper uses 5 to avoid
    /// premature convergence.
    pub elite_period: usize,
    /// Stop early after this many generations without improvement
    /// (`None` runs all generations).
    pub stagnation_limit: Option<usize>,
}

impl GaConfig {
    /// A configuration with the paper's GRA operator settings and the given
    /// sizes.
    pub fn new(population_size: usize, generations: usize) -> Self {
        Self {
            population_size,
            generations,
            crossover_rate: 0.9,
            mutation_rate: 0.01,
            selection: SelectionScheme::StochasticRemainder,
            sampling: SamplingSpace::Enlarged,
            elite_period: 5,
            stagnation_limit: None,
        }
    }

    /// Sets the crossover rate `μ_c`.
    #[must_use]
    pub fn crossover_rate(mut self, rate: f64) -> Self {
        self.crossover_rate = rate;
        self
    }

    /// Sets the per-bit mutation rate `μ_m`.
    #[must_use]
    pub fn mutation_rate(mut self, rate: f64) -> Self {
        self.mutation_rate = rate;
        self
    }

    /// Sets the offspring allocation scheme.
    #[must_use]
    pub fn selection(mut self, scheme: SelectionScheme) -> Self {
        self.selection = scheme;
        self
    }

    /// Sets the sampling space.
    #[must_use]
    pub fn sampling(mut self, sampling: SamplingSpace) -> Self {
        self.sampling = sampling;
        self
    }

    /// Sets the elite re-imposition period (0 disables elitism).
    #[must_use]
    pub fn elite_period(mut self, period: usize) -> Self {
        self.elite_period = period;
        self
    }

    /// Enables early stopping after `generations_without_improvement`.
    #[must_use]
    pub fn stagnation_limit(mut self, generations_without_improvement: usize) -> Self {
        self.stagnation_limit = Some(generations_without_improvement);
        self
    }

    /// Checks every parameter range.
    ///
    /// # Errors
    ///
    /// Returns [`GaError::BadConfig`] for a zero population, an out-of-range
    /// rate, or a zero-size tournament.
    pub fn validate(&self) -> Result<()> {
        if self.population_size == 0 {
            return Err(GaError::BadConfig {
                reason: "population size must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(GaError::BadConfig {
                reason: format!("crossover rate {} not in [0, 1]", self.crossover_rate),
            });
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err(GaError::BadConfig {
                reason: format!("mutation rate {} not in [0, 1]", self.mutation_rate),
            });
        }
        if let SelectionScheme::Tournament { size: 0 } = self.selection {
            return Err(GaError::BadConfig {
                reason: "tournament size must be positive".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_gra_settings() {
        let c = GaConfig::new(50, 80);
        assert_eq!(c.crossover_rate, 0.9);
        assert_eq!(c.mutation_rate, 0.01);
        assert_eq!(c.selection, SelectionScheme::StochasticRemainder);
        assert_eq!(c.sampling, SamplingSpace::Enlarged);
        assert_eq!(c.elite_period, 5);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(GaConfig::new(0, 10).validate().is_err());
        assert!(GaConfig::new(10, 10)
            .crossover_rate(1.5)
            .validate()
            .is_err());
        assert!(GaConfig::new(10, 10)
            .mutation_rate(-0.1)
            .validate()
            .is_err());
        assert!(GaConfig::new(10, 10)
            .selection(SelectionScheme::Tournament { size: 0 })
            .validate()
            .is_err());
    }
}
