use std::error::Error;
use std::fmt;

/// Errors produced by the GA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GaError {
    /// The initial population was empty or inconsistent.
    BadInitialPopulation {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration value was out of range.
    BadConfig {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for GaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaError::BadInitialPopulation { reason } => {
                write!(f, "bad initial population: {reason}")
            }
            GaError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
        }
    }
}

impl Error for GaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = GaError::BadConfig {
            reason: "population size 0".into(),
        };
        assert!(e.to_string().contains("population size 0"));
    }
}
