//! A reusable genetic-algorithm toolkit.
//!
//! The paper builds two GAs — GRA (static, over `M·N`-bit chromosomes with
//! enlarged `(μ+λ)` sampling) and AGRA (adaptive, a micro-GA over `M`-bit
//! chromosomes with regular sampling). This crate factors out everything
//! they share:
//!
//! * [`BitString`] — compact bit-vector chromosomes;
//! * [`SelectionScheme`] — roulette wheel, the *stochastic remainder*
//!   technique the paper adopts, and tournament selection (an ablation);
//! * [`ops`] — one-point, two-point and uniform crossover plus bit-flip
//!   mutation, as reusable building blocks for [`GaSpec`] implementations;
//! * [`Engine`] — a generation loop with either [`SamplingSpace::Regular`]
//!   or [`SamplingSpace::Enlarged`] sampling, periodic elitism and
//!   per-generation statistics.
//!
//! The problem-specific parts (fitness, operator repair rules) are supplied
//! through the [`GaSpec`] trait.
//!
//! # Examples
//!
//! Maximize the number of ones in a 32-bit string ("one-max"):
//!
//! ```
//! use drp_ga::{BitString, Engine, GaConfig, GaSpec, ops, SelectionScheme};
//! use rand::{rngs::StdRng, Rng, SeedableRng};
//!
//! struct OneMax;
//!
//! impl GaSpec for OneMax {
//!     fn evaluate(&self, c: &mut BitString) -> f64 {
//!         c.count_ones() as f64 / c.len() as f64
//!     }
//!     fn crossover(&self, a: &BitString, b: &BitString, rng: &mut dyn rand::RngCore)
//!         -> (BitString, BitString)
//!     {
//!         ops::two_point_crossover(a, b, rng)
//!     }
//!     fn mutate(&self, c: &mut BitString, rate: f64, rng: &mut dyn rand::RngCore) {
//!         ops::bit_flip_mutation(c, rate, rng);
//!     }
//! }
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let initial: Vec<BitString> =
//!     (0..20).map(|_| BitString::random(32, &mut rng)).collect();
//! let config = GaConfig::new(20, 60).mutation_rate(0.02);
//! let outcome = Engine::new(config).run(&OneMax, initial, &mut rng)?;
//! assert!(outcome.best_fitness > 0.8);
//! # Ok::<(), drp_ga::GaError>(())
//! ```

mod bitstring;
mod config;
mod engine;
mod error;
pub mod ops;
mod selection;
mod spec;
mod stats;

pub use bitstring::BitString;
pub use config::{GaConfig, SamplingSpace};
pub use engine::{Engine, GaOutcome};
pub use error::GaError;
pub use selection::SelectionScheme;
pub use spec::GaSpec;
pub use stats::GenerationStats;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GaError>;
