//! Property-based tests of the workload generators.

use drp_workload::{PatternChange, Scenario, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_instances_are_internally_consistent(
        m in 2usize..15,
        n in 1usize..25,
        u in 0.0f64..50.0,
        c in 5.0f64..40.0,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(m, n, u, c).generate(&mut rng).unwrap();
        prop_assert_eq!(problem.num_sites(), m);
        prop_assert_eq!(problem.num_objects(), n);
        for k in problem.objects() {
            // Totals match the tables.
            let reads: u64 = problem.sites().map(|i| problem.reads(i, k)).sum();
            let writes: u64 = problem.sites().map(|i| problem.writes(i, k)).sum();
            prop_assert_eq!(problem.total_reads(k), reads);
            prop_assert_eq!(problem.total_writes(k), writes);
            // Update totals stay inside the jitter band (±½, +rounding).
            let ceiling = (u / 100.0 * reads as f64 * 1.5).ceil() as u64 + 1;
            prop_assert!(writes <= ceiling, "object {}: writes {} > {}", k, writes, ceiling);
        }
        // Primary copies fit by construction.
        let primary_scheme = drp_core::ReplicationScheme::primary_only(&problem);
        prop_assert!(primary_scheme.validate(&problem).is_ok());
    }

    #[test]
    fn pattern_changes_only_touch_selected_objects(
        seed in 0u64..10_000,
        och in 0.0f64..100.0,
        share in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(8, 12, 5.0, 20.0).generate(&mut rng).unwrap();
        let change = PatternChange {
            change_percent: 300.0,
            objects_percent: och,
            read_share: share,
        };
        let shift = change.apply(&problem, &mut rng).unwrap();
        let changed: std::collections::HashSet<_> =
            shift.changed.iter().map(|(k, _)| *k).collect();
        let expected = (och / 100.0 * 12.0).round() as usize;
        prop_assert_eq!(changed.len(), expected.min(12));
        for k in problem.objects() {
            if !changed.contains(&k) {
                prop_assert_eq!(problem.total_reads(k), shift.problem.total_reads(k));
                prop_assert_eq!(problem.total_writes(k), shift.problem.total_writes(k));
            } else {
                // Changed objects never lose traffic.
                prop_assert!(shift.problem.total_reads(k) >= problem.total_reads(k));
                prop_assert!(shift.problem.total_writes(k) >= problem.total_writes(k));
            }
        }
        // The network itself is untouched.
        prop_assert_eq!(problem.costs(), shift.problem.costs());
    }

    #[test]
    fn scenario_compilation_is_deterministic_and_validated(
        which in 0usize..5,
        epochs in 1usize..12,
        sites in 1usize..20,
        period in 1u64..2048,
    ) {
        let scenario = Scenario::ALL[which];
        let plan = scenario.compile(epochs, sites, period).unwrap();
        prop_assert_eq!(plan.len(), epochs);
        // Pure compilation: same inputs, same plan, no hidden RNG.
        prop_assert_eq!(&plan, &scenario.compile(epochs, sites, period).unwrap());
        // Epoch 0 is always the unshifted boot workload.
        prop_assert!(plan[0].drift.is_none());
        prop_assert!(plan[0].zipf_exponent.is_none());
        prop_assert!(plan[0].surges.is_empty());
        for shift in &plan {
            if let Some(drift) = &shift.drift {
                prop_assert!(drift.validate().is_ok());
            }
            for surge in &shift.surges {
                prop_assert!(surge.validate().is_ok());
            }
            if let Some(faults) = &shift.faults {
                prop_assert!(faults.validate(sites).is_ok());
            }
        }
    }

    #[test]
    fn instance_format_round_trips_generated_instances(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = WorkloadSpec::paper(6, 9, 5.0, 20.0).generate(&mut rng).unwrap();
        let text = drp_core::format::write_instance(&problem);
        let back = drp_core::format::read_instance(&text).unwrap();
        prop_assert_eq!(back, problem);
    }
}
