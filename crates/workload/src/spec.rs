use serde::{Deserialize, Serialize};

use crate::generator::WorkloadError;
use crate::Result;

/// Which network topology to generate.
///
/// The paper uses [`TopologyKind::Complete`]; the rest are reproduction
/// extensions for robustness studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologyKind {
    /// Complete graph, link costs Uniform(lo, hi). The paper's setup with
    /// `lo = 1`, `hi = 10`.
    Complete,
    /// Ring with random link costs.
    Ring,
    /// Balanced tree of the given arity.
    Tree {
        /// Children per node.
        arity: usize,
    },
    /// Near-square grid.
    Grid,
    /// Erdős–Rényi `G(m, p)` kept connected by a random spanning path.
    ErdosRenyi {
        /// Independent edge probability.
        p: f64,
    },
    /// Waxman random geometric graph.
    Waxman {
        /// Waxman α (link density).
        alpha: f64,
        /// Waxman β (distance decay).
        beta: f64,
    },
    /// Two-level clusters-over-backbone topology: dense intra-cluster
    /// rings with chords, hub sites joined by a WAN tree whose links cost
    /// `wan_factor` times a LAN link. The shape the sharded solver is
    /// built for.
    Hierarchical {
        /// Number of clusters (≥ 1, ≤ `num_sites`).
        clusters: usize,
        /// WAN-to-LAN cost multiplier (≥ 1).
        wan_factor: u64,
    },
}

/// Declarative description of a synthetic workload, mirroring the paper's
/// Section 6.1 parameters.
///
/// Construct via [`WorkloadSpec::paper`] and adjust fields directly; all
/// fields are plain data validated by [`generate`](Self::generate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of sites `M`.
    pub num_sites: usize,
    /// Number of objects `N`.
    pub num_objects: usize,
    /// Update ratio `U` in percent: total updates per object are `U%` of its
    /// total reads (before the ×[½, 3⁄2] jitter).
    pub update_ratio_percent: f64,
    /// Capacity percentage `C`: site capacity is Uniform(C·S/2, 3C·S/2) of
    /// the total object size `S`.
    pub capacity_percent: f64,
    /// Per-(site, object) read count range, inclusive. Paper: (1, 40).
    pub reads_range: (u64, u64),
    /// Object size range, inclusive. Paper: uniform with mean 35; we default
    /// to (10, 60).
    pub size_range: (u64, u64),
    /// Link cost range, inclusive. Paper: (1, 10).
    pub link_cost_range: (u64, u64),
    /// Network shape.
    pub topology: TopologyKind,
    /// Zipf skew for object popularity; `None` (paper) keeps reads uniform
    /// across objects, `Some(s)` scales each object's read column by a
    /// Zipf(s) popularity (reproduction extension).
    pub zipf_skew: Option<f64>,
}

impl WorkloadSpec {
    /// The paper's configuration for given sizes, update ratio `U%` and
    /// capacity `C%`.
    pub fn paper(num_sites: usize, num_objects: usize, u_percent: f64, c_percent: f64) -> Self {
        Self {
            num_sites,
            num_objects,
            update_ratio_percent: u_percent,
            capacity_percent: c_percent,
            reads_range: (1, 40),
            size_range: (10, 60),
            link_cost_range: (1, 10),
            topology: TopologyKind::Complete,
            zipf_skew: None,
        }
    }

    /// Checks all parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadSpec`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(WorkloadError::BadSpec { reason });
        if self.num_sites == 0 {
            return fail("num_sites must be positive".into());
        }
        if self.num_objects == 0 {
            return fail("num_objects must be positive".into());
        }
        if !(0.0..=1000.0).contains(&self.update_ratio_percent) {
            return fail(format!(
                "update ratio {}% out of range [0, 1000]",
                self.update_ratio_percent
            ));
        }
        if self.capacity_percent <= 0.0 {
            return fail("capacity percent must be positive".into());
        }
        for (name, (lo, hi)) in [
            ("reads_range", self.reads_range),
            ("size_range", self.size_range),
            ("link_cost_range", self.link_cost_range),
        ] {
            if lo > hi {
                return fail(format!("{name} is empty: ({lo}, {hi})"));
            }
        }
        if self.size_range.0 == 0 {
            return fail("object sizes must be positive".into());
        }
        if self.link_cost_range.0 == 0 {
            return fail("link costs must be positive".into());
        }
        if let Some(s) = self.zipf_skew {
            if s <= 0.0 || s.is_nan() {
                return fail(format!("zipf skew {s} must be positive"));
            }
        }
        match self.topology {
            TopologyKind::Tree { arity: 0 } => fail("tree arity must be positive".into()),
            TopologyKind::ErdosRenyi { p } if !(0.0..=1.0).contains(&p) => {
                fail(format!("erdos-renyi p {p} out of [0, 1]"))
            }
            TopologyKind::Waxman { alpha, beta }
                if !(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0) =>
            {
                fail(format!("waxman parameters ({alpha}, {beta}) out of (0, 1]"))
            }
            TopologyKind::Hierarchical { clusters, .. }
                if clusters == 0 || clusters > self.num_sites =>
            {
                fail(format!(
                    "hierarchical clusters {clusters} out of [1, {}]",
                    self.num_sites
                ))
            }
            TopologyKind::Hierarchical { wan_factor: 0, .. } => {
                fail("hierarchical wan_factor must be at least 1".into())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_1() {
        let s = WorkloadSpec::paper(100, 150, 5.0, 15.0);
        assert_eq!(s.reads_range, (1, 40));
        assert_eq!(s.link_cost_range, (1, 10));
        assert_eq!((s.size_range.0 + s.size_range.1) / 2, 35);
        assert_eq!(s.topology, TopologyKind::Complete);
        s.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let base = WorkloadSpec::paper(10, 10, 5.0, 15.0);
        let mut s = base.clone();
        s.num_sites = 0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.capacity_percent = 0.0;
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.reads_range = (5, 2);
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.size_range = (0, 4);
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.topology = TopologyKind::ErdosRenyi { p: 1.5 };
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.zipf_skew = Some(0.0);
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.topology = TopologyKind::Tree { arity: 0 };
        assert!(s.validate().is_err());
        let mut s = base.clone();
        s.topology = TopologyKind::Hierarchical {
            clusters: 11,
            wan_factor: 10,
        };
        assert!(s.validate().is_err());
        let mut s = base;
        s.topology = TopologyKind::Hierarchical {
            clusters: 4,
            wan_factor: 0,
        };
        assert!(s.validate().is_err());
    }
}
