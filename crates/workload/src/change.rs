//! Read/write pattern changes for the adaptive (AGRA) experiments.
//!
//! Section 6.3 of the paper perturbs a generated workload with three knobs:
//!
//! * `Ch` — by what percentage the reads (or writes) of a changed object
//!   rise;
//! * `OCh` — what percentage of objects change their pattern;
//! * `R`/`U` — what share of the changed objects surge in *reads* vs
//!   *updates*.
//!
//! New reads are added one by one to uniformly random sites. New updates are
//! half scattered the same way and half clustered: a mean site is drawn
//! uniformly and sites are sampled from `Normal(mean, √(M/5))` — the paper
//! specifies "variance equal to one fifth of the total number of sites" — to
//! simulate objects updated from a specific cluster of nodes.

use drp_core::{ObjectId, Problem};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::generator::WorkloadError;
use crate::rngutil::normal;
use crate::Result;

/// Which direction an object's pattern shifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeKind {
    /// The object's reads increased.
    ReadSurge,
    /// The object's updates increased.
    WriteSurge,
}

/// Parameters of a pattern change (the paper's `Ch`, `OCh`, `R`).
///
/// # Examples
///
/// ```
/// use drp_workload::{PatternChange, WorkloadSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let problem = WorkloadSpec::paper(10, 20, 5.0, 15.0).generate(&mut rng)?;
/// // 30% of objects change; 80% of those surge 600% in reads, 20% in writes.
/// let change = PatternChange { change_percent: 600.0, objects_percent: 30.0, read_share: 0.8 };
/// let shift = change.apply(&problem, &mut rng)?;
/// assert_eq!(shift.changed.len(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternChange {
    /// `Ch`: percentage increase applied to the surging quantity.
    pub change_percent: f64,
    /// `OCh`: percentage of objects whose pattern changes.
    pub objects_percent: f64,
    /// `R`: fraction (0–1) of the changed objects that surge in reads; the
    /// remainder surge in updates.
    pub read_share: f64,
}

/// Outcome of applying a [`PatternChange`].
#[derive(Debug, Clone)]
pub struct PatternShift {
    /// The derived instance with the new read/write tables.
    pub problem: Problem,
    /// The changed objects and the direction of each change.
    pub changed: Vec<(ObjectId, ChangeKind)>,
}

impl PatternChange {
    /// Checks parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadSpec`] on the first violation.
    pub fn validate(&self) -> Result<()> {
        if !self.change_percent.is_finite() || self.change_percent < 0.0 {
            return Err(WorkloadError::BadSpec {
                reason: format!(
                    "change percent {} must be finite and non-negative",
                    self.change_percent
                ),
            });
        }
        if !(0.0..=100.0).contains(&self.objects_percent) {
            return Err(WorkloadError::BadSpec {
                reason: format!("objects percent {} out of [0, 100]", self.objects_percent),
            });
        }
        if !(0.0..=1.0).contains(&self.read_share) {
            return Err(WorkloadError::BadSpec {
                reason: format!("read share {} out of [0, 1]", self.read_share),
            });
        }
        Ok(())
    }

    /// Applies the change to `problem`, returning the shifted instance and
    /// the list of changed objects.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadSpec`] for invalid parameters.
    pub fn apply<R: RngCore + ?Sized>(
        &self,
        problem: &Problem,
        rng: &mut R,
    ) -> Result<PatternShift> {
        self.validate()?;
        let m = problem.num_sites();
        let n = problem.num_objects();
        let mut reads = problem.read_matrix().clone();
        let mut writes = problem.write_matrix().clone();

        // Choose the changed objects by partial shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let count = (self.objects_percent / 100.0 * n as f64).round() as usize;
        let count = count.min(n);
        let read_count = (self.read_share * count as f64).round() as usize;

        let mut changed = Vec::with_capacity(count);
        for (idx, &k) in order.iter().take(count).enumerate() {
            let object = ObjectId::new(k);
            if idx < read_count {
                // Read surge: Ch% more reads, scattered uniformly.
                let extra = (self.change_percent / 100.0 * problem.total_reads(object) as f64)
                    .round() as u64;
                for _ in 0..extra {
                    let i = rng.random_range(0..m);
                    *reads.get_mut(i, k) += 1;
                }
                changed.push((object, ChangeKind::ReadSurge));
            } else {
                // Update surge: half scattered, half clustered.
                let extra = (self.change_percent / 100.0 * problem.total_writes(object) as f64)
                    .round() as u64;
                let scattered = extra / 2;
                for _ in 0..scattered {
                    let i = rng.random_range(0..m);
                    *writes.get_mut(i, k) += 1;
                }
                let mean = rng.random_range(0..m) as f64;
                let std = (m as f64 / 5.0).sqrt();
                for _ in 0..extra - scattered {
                    let site = normal(mean, std, rng).round() as i64;
                    let site = site.rem_euclid(m as i64) as usize;
                    *writes.get_mut(site, k) += 1;
                }
                changed.push((object, ChangeKind::WriteSurge));
            }
        }

        let problem = problem.with_patterns(reads, writes)?;
        Ok(PatternShift { problem, changed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> Problem {
        WorkloadSpec::paper(10, 20, 5.0, 15.0)
            .generate(&mut StdRng::seed_from_u64(4))
            .unwrap()
    }

    #[test]
    fn read_surge_raises_totals_by_ch() {
        let p = base();
        let change = PatternChange {
            change_percent: 600.0,
            objects_percent: 100.0,
            read_share: 1.0,
        };
        let shift = change.apply(&p, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(shift.changed.len(), 20);
        for (k, kind) in &shift.changed {
            assert_eq!(*kind, ChangeKind::ReadSurge);
            let before = p.total_reads(*k) as f64;
            let after = shift.problem.total_reads(*k) as f64;
            assert!(
                (after / before - 7.0).abs() < 0.05,
                "object {k}: {before} -> {after}"
            );
            assert_eq!(p.total_writes(*k), shift.problem.total_writes(*k));
        }
    }

    #[test]
    fn write_surge_raises_update_totals() {
        let p = base();
        let change = PatternChange {
            change_percent: 400.0,
            objects_percent: 50.0,
            read_share: 0.0,
        };
        let shift = change.apply(&p, &mut StdRng::seed_from_u64(6)).unwrap();
        assert_eq!(shift.changed.len(), 10);
        for (k, kind) in &shift.changed {
            assert_eq!(*kind, ChangeKind::WriteSurge);
            let before = p.total_writes(*k);
            let after = shift.problem.total_writes(*k);
            // extra = round(4·before), split into two halves.
            assert!(after >= before + 4 * before - 1, "object {k}");
            assert_eq!(p.total_reads(*k), shift.problem.total_reads(*k));
        }
    }

    #[test]
    fn clustered_updates_concentrate() {
        // With a huge surge on one object, the clustered half should put a
        // large share of new writes on few sites.
        let p = base();
        let change = PatternChange {
            change_percent: 10_000.0,
            objects_percent: 5.0, // exactly 1 of 20 objects
            read_share: 0.0,
        };
        let shift = change.apply(&p, &mut StdRng::seed_from_u64(7)).unwrap();
        let (k, _) = shift.changed[0];
        let mut added: Vec<u64> = shift
            .problem
            .sites()
            .map(|i| shift.problem.writes(i, k) - p.writes(i, k))
            .collect();
        added.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = added.iter().sum();
        let top3: u64 = added.iter().take(3).sum();
        // Scattered half spreads over 10 sites; the clustered half (σ≈1.4)
        // lands almost entirely on ~3 sites, so the top 3 sites take at
        // least their clustered half. A uniform spread would give 0.3.
        assert!(
            top3 as f64 >= 0.45 * total as f64,
            "top3={top3} total={total}"
        );
    }

    #[test]
    fn mixed_shares_split_objects() {
        let p = base();
        let change = PatternChange {
            change_percent: 100.0,
            objects_percent: 50.0,
            read_share: 0.8,
        };
        let shift = change.apply(&p, &mut StdRng::seed_from_u64(8)).unwrap();
        let reads = shift
            .changed
            .iter()
            .filter(|(_, kind)| *kind == ChangeKind::ReadSurge)
            .count();
        assert_eq!(shift.changed.len(), 10);
        assert_eq!(reads, 8);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad = PatternChange {
            change_percent: -1.0,
            objects_percent: 10.0,
            read_share: 0.5,
        };
        assert!(bad.validate().is_err());
        let bad = PatternChange {
            change_percent: 10.0,
            objects_percent: 110.0,
            read_share: 0.5,
        };
        assert!(bad.validate().is_err());
        let bad = PatternChange {
            change_percent: 10.0,
            objects_percent: 10.0,
            read_share: 1.5,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn zero_change_is_identity_on_totals() {
        let p = base();
        let change = PatternChange {
            change_percent: 0.0,
            objects_percent: 100.0,
            read_share: 0.5,
        };
        let shift = change.apply(&p, &mut StdRng::seed_from_u64(9)).unwrap();
        for k in p.objects() {
            assert_eq!(p.total_reads(k), shift.problem.total_reads(k));
            assert_eq!(p.total_writes(k), shift.problem.total_writes(k));
        }
    }
}
