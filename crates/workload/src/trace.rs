//! Timed request traces — a reproduction extension.
//!
//! The paper's cost model is aggregate (per-period counts). For the
//! simulator-driven examples we expand a pattern into a timestamped request
//! stream, each read/write landing at a uniformly random instant of the
//! period. [`stream`] yields the requests lazily for consumers that iterate
//! period by period (the `drp-serve` runtime); [`expand`] materializes and
//! time-orders one period for the small examples.

use drp_core::{ObjectId, Problem, SiteId};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Whether a request reads or writes its object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Fetch the object from the nearest replicator.
    Read,
    /// Ship an updated version toward the primary.
    Write,
}

/// One timestamped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Instant within the period, in simulator time units.
    pub time: u64,
    /// Issuing site.
    pub site: SiteId,
    /// Target object.
    pub object: ObjectId,
    /// Read or write.
    pub kind: RequestKind,
}

/// Lazy request generator over one period: yields the pattern's requests
/// one at a time in deterministic `(site, object, reads-then-writes)`
/// generation order, drawing each timestamp from the rng on demand.
///
/// This is the streaming form of [`expand`]: nothing is materialized, so a
/// long-running consumer (the `drp-serve` runtime, a large sweep) can pull
/// a period's worth of requests without ever holding the full vector. The
/// items are *not* time-ordered — sorting requires materialization, which
/// is exactly what this type avoids; callers that need a time-ordered
/// batch use [`expand`], callers that bucket per site (the simulator
/// drivers) sort their own, smaller queues.
///
/// The rng draws happen in the same order as `expand`'s, so for the same
/// rng state the streamed requests are element-wise identical to
/// `expand`'s pre-sort sequence (asserted by a test).
#[derive(Debug)]
pub struct RequestStream<'a, R: RngCore + ?Sized> {
    problem: &'a Problem,
    period: u64,
    rng: &'a mut R,
    site: usize,
    object: usize,
    reads_left: u64,
    writes_left: u64,
    remaining: u64,
}

impl<'a, R: RngCore + ?Sized> RequestStream<'a, R> {
    fn new(problem: &'a Problem, period: u64, rng: &'a mut R) -> Self {
        let remaining = problem
            .objects()
            .map(|k| problem.total_reads(k) + problem.total_writes(k))
            .sum();
        let first = (SiteId::new(0), ObjectId::new(0));
        Self {
            reads_left: problem.reads(first.0, first.1),
            writes_left: problem.writes(first.0, first.1),
            problem,
            period,
            rng,
            site: 0,
            object: 0,
            remaining,
        }
    }

    /// Appends up to `max` requests to `buf`, returning how many were
    /// written. Batched form of the iterator for consumers that refill a
    /// reusable buffer instead of pulling one request at a time — the
    /// ingestion front end drains the period in fixed-size batches through
    /// this without the per-item iterator plumbing in its hot loop.
    pub fn fill(&mut self, buf: &mut Vec<Request>, max: usize) -> usize {
        let take = max.min(self.remaining as usize);
        buf.reserve(take);
        for _ in 0..take {
            // `remaining` exactly counts what the pattern still owes, so
            // the iterator cannot run dry inside the batch.
            buf.push(self.next().expect("remaining bounds the stream"));
        }
        take
    }

    fn emit(&mut self, kind: RequestKind) -> Request {
        self.remaining -= 1;
        Request {
            time: self.rng.random_range(0..self.period.max(1)),
            site: SiteId::new(self.site),
            object: ObjectId::new(self.object),
            kind,
        }
    }
}

impl<R: RngCore + ?Sized> Iterator for RequestStream<'_, R> {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        loop {
            if self.reads_left > 0 {
                self.reads_left -= 1;
                return Some(self.emit(RequestKind::Read));
            }
            if self.writes_left > 0 {
                self.writes_left -= 1;
                return Some(self.emit(RequestKind::Write));
            }
            self.object += 1;
            if self.object == self.problem.num_objects() {
                self.object = 0;
                self.site += 1;
            }
            if self.site == self.problem.num_sites() {
                return None;
            }
            let (i, k) = (SiteId::new(self.site), ObjectId::new(self.object));
            self.reads_left = self.problem.reads(i, k);
            self.writes_left = self.problem.writes(i, k);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl<R: RngCore + ?Sized> ExactSizeIterator for RequestStream<'_, R> {}

/// Streams the aggregate pattern of `problem` as individual requests over
/// `[0, period)` without materializing them. See [`RequestStream`].
pub fn stream<'a, R: RngCore + ?Sized>(
    problem: &'a Problem,
    period: u64,
    rng: &'a mut R,
) -> RequestStream<'a, R> {
    RequestStream::new(problem, period, rng)
}

/// Expands the aggregate pattern of `problem` into a time-ordered request
/// stream over `[0, period)` — a thin wrapper that collects [`stream`] and
/// sorts by timestamp.
///
/// The returned vector holds the total number of reads and writes in the
/// instance, so use this with small instances; large consumers should pull
/// from [`stream`] incrementally instead.
///
/// # Examples
///
/// ```
/// use drp_workload::{trace, WorkloadSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(10);
/// let problem = WorkloadSpec::paper(4, 3, 5.0, 25.0).generate(&mut rng)?;
/// let requests = trace::expand(&problem, 1_000, &mut rng);
/// assert!(requests.windows(2).all(|w| w[0].time <= w[1].time));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expand<R: RngCore + ?Sized>(problem: &Problem, period: u64, rng: &mut R) -> Vec<Request> {
    let mut requests: Vec<Request> = stream(problem, period, rng).collect();
    requests.sort_by_key(|r| r.time);
    requests
}

/// Drives a request trace through the discrete-event simulator against a
/// replication scheme, request by request at the trace's timestamps.
///
/// Each read issues a control request to the issuer's nearest replicator,
/// which returns the object; each write ships the object to the primary
/// (control-sized when the writer is itself a replicator, matching Eq. 4's
/// convention), which broadcasts the update to every other replicator. The
/// measured transfer cost therefore equals the aggregate model's
/// [`Problem::total_cost`] whenever the trace was expanded from the same
/// pattern — asserted by the tests.
///
/// # Errors
///
/// Propagates simulator errors (event budget exhaustion would indicate a
/// protocol bug) and rejects traces whose ids exceed the instance.
pub fn simulate(
    problem: &Problem,
    scheme: &drp_core::ReplicationScheme,
    requests: &[Request],
) -> drp_core::Result<TraceReport> {
    use drp_net::sim::{Context, Message, Node, Simulator};
    use std::sync::Arc;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Msg {
        /// Fire one queued request (timer payload carries its index).
        Fire {
            index: usize,
        },
        ReadRequest {
            object: usize,
        },
        Data {
            object: usize,
        },
        WriteShip {
            object: usize,
        },
        Update {
            object: usize,
        },
    }

    // Nodes borrow the problem and scheme for the lifetime of the run —
    // the simulator is lifetime-parameterized, so no dense-matrix or
    // scheme copy is paid per invocation.
    struct Shared<'p> {
        problem: &'p Problem,
        scheme: &'p drp_core::ReplicationScheme,
        /// Per-site request queues: (time, object, is_write).
        queues: Vec<Vec<(u64, usize, bool)>>,
    }

    struct TraceNode<'p> {
        shared: Arc<Shared<'p>>,
        served_reads: u64,
    }

    impl TraceNode<'_> {
        fn broadcast(&self, ctx: &mut Context<'_, Msg>, object: usize) {
            let k = ObjectId::new(object);
            let size = self.shared.problem.object_size(k);
            let me = ctx.node_id();
            let targets: Vec<usize> = self
                .shared
                .scheme
                .replicators(k)
                .map(SiteId::index)
                .filter(|&j| j != me)
                .collect();
            for j in targets {
                ctx.send(j, size, Msg::Update { object });
            }
        }

        fn issue(&self, ctx: &mut Context<'_, Msg>, object: usize, is_write: bool) {
            let me = SiteId::new(ctx.node_id());
            let k = ObjectId::new(object);
            let shared = &*self.shared;
            if is_write {
                let sp = shared.problem.primary(k);
                if sp == me {
                    self.broadcast(ctx, object);
                } else {
                    let size = if shared.scheme.holds(me, k) {
                        0
                    } else {
                        shared.problem.object_size(k)
                    };
                    ctx.send(sp.index(), size, Msg::WriteShip { object });
                }
            } else {
                let (sn, _) = shared.scheme.nearest_replica(shared.problem, me, k);
                if sn != me {
                    ctx.send(sn.index(), 0, Msg::ReadRequest { object });
                }
            }
        }
    }

    impl Node<Msg> for TraceNode<'_> {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for (index, &(time, _, _)) in self.shared.queues[ctx.node_id()].iter().enumerate() {
                ctx.set_timer(time, Msg::Fire { index });
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, payload: Msg) {
            if let Msg::Fire { index } = payload {
                let (_, object, is_write) = self.shared.queues[ctx.node_id()][index];
                self.issue(ctx, object, is_write);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, msg: Message<Msg>) {
            match msg.payload {
                Msg::ReadRequest { object } => {
                    self.served_reads += 1;
                    let size = self.shared.problem.object_size(ObjectId::new(object));
                    ctx.send(msg.src, size, Msg::Data { object });
                }
                Msg::WriteShip { object } => self.broadcast(ctx, object),
                Msg::Data { .. } | Msg::Update { .. } | Msg::Fire { .. } => {}
            }
        }
    }

    let mut queues = vec![Vec::new(); problem.num_sites()];
    for request in requests {
        problem.check_site(request.site)?;
        problem.check_object(request.object)?;
        queues[request.site.index()].push((
            request.time,
            request.object.index(),
            request.kind == RequestKind::Write,
        ));
    }
    let shared = Arc::new(Shared {
        problem,
        scheme,
        queues,
    });
    let nodes: Vec<Box<dyn Node<Msg> + '_>> = (0..problem.num_sites())
        .map(|_| {
            Box::new(TraceNode {
                shared: Arc::clone(&shared),
                served_reads: 0,
            }) as Box<dyn Node<Msg> + '_>
        })
        .collect();
    let mut sim = Simulator::new(problem.costs(), nodes).map_err(drp_core::CoreError::from)?;
    sim.run_to_completion().map_err(drp_core::CoreError::from)?;
    Ok(TraceReport {
        transfer_cost: sim.stats().transfer_cost,
        completion_time: sim.now(),
        messages: sim.stats().messages,
    })
}

/// Outcome of a trace-driven simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReport {
    /// Measured network transfer cost.
    pub transfer_cost: u64,
    /// Simulated instant the last message settled.
    pub completion_time: u64,
    /// Messages exchanged (requests, data, ships, updates).
    pub messages: u64,
}

/// Counts requests by kind, a convenience for reporting.
pub fn volume(requests: &[Request]) -> (usize, usize) {
    let reads = requests
        .iter()
        .filter(|r| r.kind == RequestKind::Read)
        .count();
    (reads, requests.len() - reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expansion_matches_aggregate_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = WorkloadSpec::paper(4, 3, 10.0, 25.0)
            .generate(&mut rng)
            .unwrap();
        let requests = expand(&p, 500, &mut rng);
        let (reads, writes) = volume(&requests);
        let expected_reads: u64 = p.objects().map(|k| p.total_reads(k)).sum();
        let expected_writes: u64 = p.objects().map(|k| p.total_writes(k)).sum();
        assert_eq!(reads as u64, expected_reads);
        assert_eq!(writes as u64, expected_writes);
    }

    #[test]
    fn trace_simulation_matches_aggregate_cost_model() {
        let mut rng = StdRng::seed_from_u64(21);
        let p = WorkloadSpec::paper(5, 4, 10.0, 30.0)
            .generate(&mut rng)
            .unwrap();
        let scheme = drp_core::ReplicationScheme::primary_only(&p);
        let requests = expand(&p, 200, &mut rng);
        let report = simulate(&p, &scheme, &requests).unwrap();
        assert_eq!(report.transfer_cost, p.total_cost(&scheme));
        assert!(report.completion_time >= 1);
        assert!(report.messages as usize >= requests.len() / 2);
    }

    #[test]
    fn trace_simulation_matches_with_replicas() {
        let mut rng = StdRng::seed_from_u64(22);
        let p = WorkloadSpec::paper(5, 4, 10.0, 40.0)
            .generate(&mut rng)
            .unwrap();
        let mut scheme = drp_core::ReplicationScheme::primary_only(&p);
        for k in p.objects() {
            for i in p.sites() {
                if !scheme.holds(i, k) && p.object_size(k) <= scheme.free_capacity(&p, i) {
                    scheme.add_replica(&p, i, k).unwrap();
                    break;
                }
            }
        }
        let requests = expand(&p, 100, &mut rng);
        let report = simulate(&p, &scheme, &requests).unwrap();
        assert_eq!(report.transfer_cost, p.total_cost(&scheme));
    }

    #[test]
    fn trace_simulation_rejects_foreign_requests() {
        let mut rng = StdRng::seed_from_u64(23);
        let p = WorkloadSpec::paper(4, 3, 5.0, 30.0)
            .generate(&mut rng)
            .unwrap();
        let scheme = drp_core::ReplicationScheme::primary_only(&p);
        let bad = vec![Request {
            time: 0,
            site: SiteId::new(9),
            object: ObjectId::new(0),
            kind: RequestKind::Read,
        }];
        assert!(simulate(&p, &scheme, &bad).is_err());
    }

    #[test]
    fn stream_matches_expand_exactly() {
        // Same rng state: the streamed requests, once sorted like `expand`
        // sorts, are element-wise identical — `expand` is a thin wrapper.
        let p = WorkloadSpec::paper(6, 5, 10.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(31))
            .unwrap();
        let expanded = expand(&p, 300, &mut StdRng::seed_from_u64(77));
        let mut rng = StdRng::seed_from_u64(77);
        let mut streamed: Vec<Request> = stream(&p, 300, &mut rng).collect();
        streamed.sort_by_key(|r| r.time);
        assert_eq!(expanded, streamed);
    }

    #[test]
    fn stream_is_exact_size_and_incremental() {
        let p = WorkloadSpec::paper(4, 3, 10.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(32))
            .unwrap();
        let total: u64 = p
            .objects()
            .map(|k| p.total_reads(k) + p.total_writes(k))
            .sum();
        let mut rng = StdRng::seed_from_u64(5);
        let mut it = stream(&p, 100, &mut rng);
        assert_eq!(it.len() as u64, total);
        // Pulling one request shrinks the exact size hint: the generator is
        // incremental, not a drained buffer.
        let first = it.next().unwrap();
        assert!(first.time < 100);
        assert_eq!(it.len() as u64, total - 1);
        assert_eq!(it.count() as u64, total - 1);
    }

    #[test]
    fn fill_batches_concatenate_to_the_full_stream() {
        let p = WorkloadSpec::paper(5, 4, 10.0, 25.0)
            .generate(&mut StdRng::seed_from_u64(33))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let whole: Vec<Request> = stream(&p, 250, &mut rng).collect();
        let mut rng = StdRng::seed_from_u64(99);
        let mut it = stream(&p, 250, &mut rng);
        let mut batched = Vec::new();
        loop {
            let got = it.fill(&mut batched, 7);
            if got == 0 {
                break;
            }
            assert!(got <= 7);
        }
        assert_eq!(whole, batched);
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn times_are_within_period_and_sorted() {
        let mut rng = StdRng::seed_from_u64(12);
        let p = WorkloadSpec::paper(3, 2, 5.0, 25.0)
            .generate(&mut rng)
            .unwrap();
        let requests = expand(&p, 100, &mut rng);
        assert!(requests.iter().all(|r| r.time < 100));
        assert!(requests.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
