//! Small sampling helpers shared by the generators.

use rand::{Rng, RngCore};

/// Samples a standard normal via the Box–Muller transform.
///
/// Implemented locally (15 lines) instead of depending on `rand_distr`.
pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `Normal(mean, std)`.
pub fn normal<R: RngCore + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    mean + std * standard_normal(rng)
}

/// Samples an integer uniformly from `[lo, hi]` (inclusive); `lo == hi`
/// returns that value.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform_u64<R: RngCore + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> u64 {
    assert!(lo <= hi, "empty range");
    rng.random_range(lo..=hi)
}

/// The paper's jitter: Uniform(T/2, 3T/2), used for both total updates and
/// site capacities "to instill enough diversity".
pub fn half_to_threehalves<R: RngCore + ?Sized>(t: u64, rng: &mut R) -> u64 {
    uniform_u64(t / 2, 3 * t / 2, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(10.0, 2.0, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_bounds_are_inclusive() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = uniform_u64(3, 5, &mut rng);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(uniform_u64(4, 4, &mut rng), 4);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = half_to_threehalves(100, &mut rng);
            assert!((50..=150).contains(&v));
        }
    }
}
