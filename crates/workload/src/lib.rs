//! Synthetic workload substrate reproducing Section 6.1 of the paper.
//!
//! The generator builds [`drp_core::Problem`] instances the way the paper's
//! evaluation does:
//!
//! * complete network with link costs Uniform(1, 10) (other topologies are
//!   available as reproduction extensions);
//! * one randomly placed primary copy per object;
//! * reads per (site, object) drawn Uniform(1, 40);
//! * total updates per object set to `U%` of its total reads, jittered
//!   Uniform(T/2, 3T/2) and scattered over random sites;
//! * object sizes uniform with mean 35;
//! * site capacities Uniform(C·S/2, 3C·S/2) where `S` is the total size of
//!   all objects and `C` the capacity percentage.
//!
//! [`PatternChange`] implements the fifth experiment's read/write pattern
//! shifts (parameters `Ch`, `OCh`, `R/U` split, with half of the update
//! surges clustered around a random site via a Normal(μ, M/5) — sampled with
//! our own Box–Muller to avoid an extra dependency).
//!
//! Extensions beyond the paper: [`zipf`] read skew (web-like popularity) and
//! [`trace`] timed request traces for the discrete-event simulator.
//!
//! # Examples
//!
//! ```
//! use drp_workload::WorkloadSpec;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // The paper's AGRA test case: M=50, N=200, U=5%, C=15%.
//! let problem = WorkloadSpec::paper(50, 200, 5.0, 15.0).generate(&mut rng)?;
//! assert_eq!(problem.num_sites(), 50);
//! assert_eq!(problem.num_objects(), 200);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod change;
mod generator;
pub mod rngutil;
mod scenario;
mod spec;
pub mod trace;
pub mod zipf;

pub use change::{ChangeKind, PatternChange, PatternShift};
pub use generator::WorkloadError;
pub use scenario::{EpochShift, ObjectSurge, Scenario, ScenarioFaults};
pub use spec::{TopologyKind, WorkloadSpec};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
