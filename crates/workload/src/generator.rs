use std::error::Error;
use std::fmt;

use drp_core::{CoreError, DenseMatrix, Problem, SiteId, SparseProblem};
use drp_net::{topology, CostMatrix, Graph, NetError};
use rand::{Rng, RngCore};

use crate::rngutil::{half_to_threehalves, uniform_u64};
use crate::spec::{TopologyKind, WorkloadSpec};
use crate::zipf;
use crate::Result;

/// Errors produced by the workload generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A specification field was out of range.
    BadSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// An error bubbled up from the DRP core.
    Core(CoreError),
    /// An error bubbled up from the network substrate.
    Net(NetError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::BadSpec { reason } => write!(f, "bad workload spec: {reason}"),
            WorkloadError::Core(e) => write!(f, "core error: {e}"),
            WorkloadError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Core(e) => Some(e),
            WorkloadError::Net(e) => Some(e),
            WorkloadError::BadSpec { .. } => None,
        }
    }
}

impl From<CoreError> for WorkloadError {
    fn from(e: CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

impl From<NetError> for WorkloadError {
    fn from(e: NetError) -> Self {
        WorkloadError::Net(e)
    }
}

/// Largest divisor of `m` that is ≤ √m, so `Grid` topologies get the most
/// square shape with exactly `m` sites.
fn squarest_rows(m: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= m {
        if m.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

fn build_graph<R: RngCore + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Result<Graph> {
    let (lo, hi) = spec.link_cost_range;
    let m = spec.num_sites;
    let graph = match spec.topology {
        TopologyKind::Complete => topology::complete_uniform(m, lo, hi, rng)?,
        TopologyKind::Ring => topology::ring(m, lo, hi, rng)?,
        TopologyKind::Tree { arity } => topology::balanced_tree(m, arity, lo, hi, rng)?,
        TopologyKind::Grid => {
            let rows = squarest_rows(m);
            topology::grid(rows, m / rows, lo, hi, rng)?
        }
        TopologyKind::ErdosRenyi { p } => topology::erdos_renyi(m, p, lo, hi, rng)?,
        TopologyKind::Waxman { alpha, beta } => topology::waxman(m, alpha, beta, lo, hi, rng)?,
        TopologyKind::Hierarchical {
            clusters,
            wan_factor,
        } => topology::hierarchical(m, clusters, lo, hi, wan_factor, rng)?,
    };
    Ok(graph)
}

/// Everything an instance needs except the distance representation: the
/// common output of [`WorkloadSpec::generate`] (which densifies it into a
/// [`CostMatrix`]-backed [`Problem`]) and [`WorkloadSpec::generate_sparse`]
/// (which keeps the graph). Both paths draw from the RNG in exactly the
/// same order, so per seed they describe the *same* instance.
struct RawInstance {
    graph: Graph,
    sizes: Vec<u64>,
    primaries: Vec<SiteId>,
    reads: DenseMatrix<u64>,
    writes: DenseMatrix<u64>,
    capacities: Vec<u64>,
}

fn draw_instance<R: RngCore + ?Sized>(spec: &WorkloadSpec, rng: &mut R) -> Result<RawInstance> {
    spec.validate()?;
    let m = spec.num_sites;
    let n = spec.num_objects;

    let graph = build_graph(spec, rng)?;

    // Primary copies land on random sites.
    let primaries: Vec<SiteId> = (0..n)
        .map(|_| SiteId::new(rng.random_range(0..m)))
        .collect();

    // Object sizes: uniform, mean 35 with the paper's defaults.
    let sizes: Vec<u64> = (0..n)
        .map(|_| uniform_u64(spec.size_range.0, spec.size_range.1, rng))
        .collect();

    // Reads: Uniform(1, 40) per (site, object); the Zipf extension then
    // scales each object's column by its popularity.
    let mut reads = DenseMatrix::zeros(m, n);
    for k in 0..n {
        for i in 0..m {
            reads.set(
                i,
                k,
                uniform_u64(spec.reads_range.0, spec.reads_range.1, rng),
            );
        }
    }
    if let Some(skew) = spec.zipf_skew {
        zipf::apply_popularity(&mut reads, skew, rng);
    }

    // Updates: U% of each object's total reads, jittered ×[½, 3⁄2],
    // scattered one by one over random sites.
    let mut writes = DenseMatrix::zeros(m, n);
    for k in 0..n {
        let total_reads: u64 = reads.column_sum(k);
        let target = (spec.update_ratio_percent / 100.0 * total_reads as f64).round() as u64;
        let total_updates = half_to_threehalves(target, rng);
        for _ in 0..total_updates {
            let i = rng.random_range(0..m);
            *writes.get_mut(i, k) += 1;
        }
    }

    // Capacities: Uniform(C·S/2, 3C·S/2), raised to fit primary copies.
    let total_size: u64 = sizes.iter().sum();
    let target = (spec.capacity_percent / 100.0 * total_size as f64).round() as u64;
    let mut primary_load = vec![0u64; m];
    for (k, p) in primaries.iter().enumerate() {
        primary_load[p.index()] += sizes[k];
    }
    let capacities: Vec<u64> = primary_load
        .iter()
        .map(|&load| half_to_threehalves(target, rng).max(load))
        .collect();

    Ok(RawInstance {
        graph,
        sizes,
        primaries,
        reads,
        writes,
        capacities,
    })
}

impl WorkloadSpec {
    /// Generates one random instance according to this specification.
    ///
    /// Site capacities are raised, when necessary, to fit the primary copies
    /// randomly assigned to each site (the paper implicitly assumes primary
    /// copies fit; the jittered capacity draw could otherwise strand them).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadSpec`] for invalid parameters, or wrapped
    /// substrate errors (e.g. a topology too small for its kind).
    ///
    /// # Examples
    ///
    /// ```
    /// use drp_workload::WorkloadSpec;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let problem = WorkloadSpec::paper(10, 20, 5.0, 15.0).generate(&mut rng)?;
    /// assert!(problem.d_prime() > 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Result<Problem> {
        let raw = draw_instance(self, rng)?;
        let costs = CostMatrix::from_graph(&raw.graph)?;
        let mut builder = Problem::builder(costs);
        builder.objects_bulk(raw.sizes, raw.primaries);
        builder.capacities(raw.capacities);
        builder.read_matrix(raw.reads);
        builder.write_matrix(raw.writes);
        Ok(builder.build()?)
    }

    /// Generates the same instance as [`generate`](Self::generate) — the
    /// RNG draw order is shared, so per seed the two describe identical
    /// workloads — but keeps the network as a graph-backed
    /// [`SparseProblem`] instead of materializing the `M²` cost matrix.
    /// This is the entry point for at-scale (`M` in the thousands) runs
    /// where the dense path would not fit.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::BadSpec`] for invalid parameters, or
    /// wrapped substrate errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use drp_workload::WorkloadSpec;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let spec = WorkloadSpec::paper(10, 20, 5.0, 15.0);
    /// let sparse = spec.generate_sparse(&mut StdRng::seed_from_u64(42))?;
    /// let dense = spec.generate(&mut StdRng::seed_from_u64(42))?;
    /// assert_eq!(sparse.d_prime(), dense.d_prime());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn generate_sparse<R: RngCore + ?Sized>(&self, rng: &mut R) -> Result<SparseProblem> {
        let raw = draw_instance(self, rng)?;
        Ok(SparseProblem::new(
            raw.graph,
            raw.sizes,
            raw.primaries,
            raw.capacities,
            raw.reads,
            raw.writes,
        )?)
    }

    /// Generates `count` independent instances (the paper averages over 15
    /// networks per configuration).
    ///
    /// # Errors
    ///
    /// Propagates the first generation failure.
    pub fn generate_many<R: RngCore + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<Problem>> {
        (0..count).map(|_| self.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn paper_spec_generates_valid_instance() {
        let p = WorkloadSpec::paper(20, 30, 5.0, 15.0)
            .generate(&mut rng())
            .unwrap();
        assert_eq!(p.num_sites(), 20);
        assert_eq!(p.num_objects(), 30);
        // Reads respect the Uniform(1, 40) range.
        for i in p.sites() {
            for k in p.objects() {
                assert!((1..=40).contains(&p.reads(i, k)));
            }
        }
        // Sizes respect (10, 60).
        for k in p.objects() {
            assert!((10..=60).contains(&p.object_size(k)));
        }
    }

    #[test]
    fn update_totals_track_the_ratio() {
        let p = WorkloadSpec::paper(20, 40, 10.0, 15.0)
            .generate(&mut rng())
            .unwrap();
        for k in p.objects() {
            let reads = p.total_reads(k) as f64;
            let writes = p.total_writes(k) as f64;
            // target = 10% of reads, jittered within [½, 3⁄2] plus rounding.
            assert!(
                writes >= (0.05 * reads).floor() - 1.0 && writes <= (0.15 * reads).ceil() + 1.0,
                "object {k}: reads={reads} writes={writes}"
            );
        }
    }

    #[test]
    fn capacities_fit_primary_copies() {
        // A tiny capacity percentage would strand primaries without the
        // raise-to-fit rule.
        let mut spec = WorkloadSpec::paper(4, 50, 5.0, 15.0);
        spec.capacity_percent = 0.5;
        let p = spec.generate(&mut rng()).unwrap();
        // Problem::build would have rejected an infeasible assignment, so
        // reaching here is the assertion; sanity-check d_prime anyway.
        assert!(p.d_prime() > 0);
    }

    #[test]
    fn determinism_per_seed() {
        let spec = WorkloadSpec::paper(12, 18, 5.0, 15.0);
        let a = spec.generate(&mut StdRng::seed_from_u64(5)).unwrap();
        let b = spec.generate(&mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
        let c = spec.generate(&mut StdRng::seed_from_u64(6)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sparse_and_dense_share_the_rng_stream() {
        let mut spec = WorkloadSpec::paper(14, 12, 5.0, 20.0);
        spec.topology = TopologyKind::Hierarchical {
            clusters: 3,
            wan_factor: 10,
        };
        let sparse = spec.generate_sparse(&mut StdRng::seed_from_u64(9)).unwrap();
        let dense = spec.generate(&mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(sparse.d_prime(), dense.d_prime());
        assert_eq!(sparse.to_dense().unwrap(), dense);
    }

    #[test]
    fn alternative_topologies_generate() {
        let mut r = rng();
        for topo in [
            TopologyKind::Ring,
            TopologyKind::Tree { arity: 2 },
            TopologyKind::Grid,
            TopologyKind::ErdosRenyi { p: 0.3 },
            TopologyKind::Waxman {
                alpha: 0.7,
                beta: 0.4,
            },
            TopologyKind::Hierarchical {
                clusters: 3,
                wan_factor: 10,
            },
        ] {
            let mut spec = WorkloadSpec::paper(12, 10, 5.0, 20.0);
            spec.topology = topo;
            let p = spec.generate(&mut r).unwrap();
            assert_eq!(p.num_sites(), 12, "{topo:?}");
        }
    }

    #[test]
    fn zipf_extension_skews_popularity() {
        let mut spec = WorkloadSpec::paper(10, 50, 5.0, 15.0);
        spec.zipf_skew = Some(1.2);
        let p = spec.generate(&mut rng()).unwrap();
        let totals: Vec<u64> = p.objects().map(|k| p.total_reads(k)).collect();
        let max = *totals.iter().max().unwrap();
        let min = *totals.iter().min().unwrap();
        assert!(
            max > 4 * min.max(1),
            "zipf should spread totals: {min}..{max}"
        );
    }

    #[test]
    fn generate_many_counts() {
        let spec = WorkloadSpec::paper(6, 8, 5.0, 15.0);
        let instances = spec.generate_many(4, &mut rng()).unwrap();
        assert_eq!(instances.len(), 4);
    }

    #[test]
    fn squarest_rows_factors() {
        assert_eq!(squarest_rows(12), 3);
        assert_eq!(squarest_rows(16), 4);
        assert_eq!(squarest_rows(13), 1); // prime → 1×13 line-grid
        assert_eq!(squarest_rows(1), 1);
    }
}
