//! Zipf popularity skew — a reproduction extension.
//!
//! The paper draws reads Uniform(1, 40) for every (site, object) pair, which
//! makes all objects roughly equally popular. Web workloads motivating the
//! paper are strongly skewed, so we optionally scale each object's read
//! column by a Zipf popularity weight (normalized to mean 1 so the aggregate
//! read volume is comparable to the uniform case).

use drp_core::DenseMatrix;
use rand::{Rng, RngCore};

/// Zipf weights for `n` ranks with exponent `s`, normalized to mean 1.
///
/// # Panics
///
/// Panics if `n == 0` or `s <= 0`.
pub fn normalized_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    assert!(s > 0.0, "zipf exponent must be positive");
    let raw: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-s)).collect();
    let mean = raw.iter().sum::<f64>() / n as f64;
    raw.into_iter().map(|w| w / mean).collect()
}

/// Scales each object's read column by a Zipf weight; rank order is a random
/// permutation of the objects so popularity is independent of object id.
///
/// Scaled read counts are rounded to the nearest integer (possibly 0).
pub fn apply_popularity<R: RngCore + ?Sized>(reads: &mut DenseMatrix<u64>, s: f64, rng: &mut R) {
    let n = reads.cols();
    if n == 0 {
        return;
    }
    let weights = normalized_weights(n, s);
    // Random rank assignment.
    let mut ranks: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        ranks.swap(i, j);
    }
    for k in 0..n {
        let w = weights[ranks[k]];
        for i in 0..reads.rows() {
            let scaled = (*reads.get(i, k) as f64 * w).round() as u64;
            reads.set(i, k, scaled);
        }
    }
}

/// Samples a rank in `0..weights.len()` proportionally to the given weights
/// (useful for trace generation).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn sample_index<R: RngCore + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_normalized_and_decreasing() {
        let w = normalized_weights(10, 1.0);
        let mean = w.iter().sum::<f64>() / 10.0;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    fn apply_preserves_rough_volume() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut reads = DenseMatrix::from_rows(2, 4, vec![10u64; 8]).unwrap();
        let before: u64 = (0..4).map(|k| reads.column_sum(k)).sum();
        apply_popularity(&mut reads, 1.0, &mut rng);
        let after: u64 = (0..4).map(|k| reads.column_sum(k)).sum();
        let ratio = after as f64 / before as f64;
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sample_index_prefers_heavy_ranks() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = vec![0.9, 0.1];
        let heavy = (0..1000)
            .filter(|_| sample_index(&w, &mut rng) == 0)
            .count();
        assert!(heavy > 800);
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn zero_exponent_panics() {
        normalized_weights(5, 0.0);
    }
}
