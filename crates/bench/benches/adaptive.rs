//! Figure 4(d): cost of adapting to a pattern change — AGRA variants
//! versus warm-started and fresh GRA.
//!
//! Expected shape (matching the paper): AGRA (with or without a short
//! mini-GRA) runs 1.5–2 orders of magnitude faster than a fresh
//! many-generation GRA, and its cost barely moves with the share of
//! changed objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drp_algo::{Agra, AgraConfig, Gra, GraConfig};
use drp_bench::{instance, rng};
use drp_core::ObjectId;
use drp_ga::BitString;
use drp_workload::PatternChange;
use std::hint::black_box;

struct Fixture {
    new_problem: drp_core::Problem,
    scheme: drp_core::ReplicationScheme,
    population: Vec<BitString>,
    changed: Vec<ObjectId>,
}

fn fixture(och: f64) -> Fixture {
    let problem = instance(25, 80, 5.0);
    let gra = Gra::with_config(GraConfig {
        population_size: 20,
        generations: 20,
        ..GraConfig::default()
    });
    let run = gra.solve_detailed(&problem, &mut rng()).unwrap();
    let change = PatternChange {
        change_percent: 600.0,
        objects_percent: och,
        read_share: 0.5,
    };
    let shift = change.apply(&problem, &mut rng()).unwrap();
    Fixture {
        new_problem: shift.problem,
        scheme: run.scheme,
        population: run
            .outcome
            .final_population
            .iter()
            .map(|(c, _)| c.clone())
            .collect(),
        changed: shift.changed.iter().map(|(k, _)| *k).collect(),
    }
}

fn bench_adaptation_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4d_adaptation_cost");
    group.sample_size(10);
    let f = fixture(30.0);

    for mini in [0usize, 5, 10] {
        let agra = Agra::with_config(AgraConfig {
            mini_gra_generations: mini,
            gra: GraConfig {
                population_size: 20,
                generations: 20,
                ..GraConfig::default()
            },
            ..AgraConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("agra_mini", mini), &mini, |b, _| {
            b.iter(|| {
                black_box(
                    agra.adapt(
                        &f.new_problem,
                        &f.scheme,
                        &f.population,
                        &f.changed,
                        &mut rng(),
                    )
                    .unwrap(),
                )
            })
        });
    }

    for generations in [20usize, 40] {
        let gra = Gra::with_config(GraConfig {
            population_size: 20,
            generations,
            ..GraConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("fresh_gra", generations),
            &generations,
            |b, _| b.iter(|| black_box(gra.solve_detailed(&f.new_problem, &mut rng()).unwrap())),
        );
    }
    group.finish();
}

fn bench_agra_vs_och(c: &mut Criterion) {
    let mut group = c.benchmark_group("agra_vs_changed_share");
    group.sample_size(10);
    for och in [10.0f64, 30.0, 50.0] {
        let f = fixture(och);
        let agra = Agra::with_config(AgraConfig {
            mini_gra_generations: 5,
            gra: GraConfig {
                population_size: 20,
                generations: 20,
                ..GraConfig::default()
            },
            ..AgraConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{och}pct")),
            &och,
            |b, _| {
                b.iter(|| {
                    black_box(
                        agra.adapt(
                            &f.new_problem,
                            &f.scheme,
                            &f.population,
                            &f.changed,
                            &mut rng(),
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_adaptation_policies, bench_agra_vs_och);
criterion_main!(benches);
