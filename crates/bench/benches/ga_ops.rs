//! Microbenchmarks of the GA building blocks: selection schemes, crossover
//! operators and mutation over GRA-sized chromosomes, plus whole-population
//! fitness scoring (per-call allocation vs scratch-reusing batch vs the
//! threaded batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drp_algo::{chromosome_cost, encode_scheme, evaluate_population, Sra};
use drp_bench::{instance, rng};
use drp_core::ReplicationAlgorithm;
use drp_ga::{ops, BitString, SelectionScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let mut rng = StdRng::seed_from_u64(1);
    let fitness: Vec<f64> = (0..150).map(|i| (i % 17) as f64 / 17.0).collect();
    for (name, scheme) in [
        ("roulette", SelectionScheme::Roulette),
        ("stochastic_remainder", SelectionScheme::StochasticRemainder),
        ("tournament3", SelectionScheme::Tournament { size: 3 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| black_box(s.allocate(&fitness, 50, &mut rng)))
        });
    }
    group.finish();
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    let mut rng = StdRng::seed_from_u64(2);
    // A GRA-sized chromosome: 50 sites × 200 objects.
    let a = BitString::random(10_000, &mut rng);
    let b2 = BitString::random(10_000, &mut rng);
    group.bench_function("one_point_10k", |b| {
        b.iter(|| black_box(ops::one_point_crossover(&a, &b2, &mut rng)))
    });
    group.bench_function("two_point_10k", |b| {
        b.iter(|| black_box(ops::two_point_crossover(&a, &b2, &mut rng)))
    });
    group.bench_function("uniform_10k", |b| {
        b.iter(|| black_box(ops::uniform_crossover(&a, &b2, &mut rng)))
    });
    group.finish();
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation");
    let mut rng = StdRng::seed_from_u64(3);
    let template = BitString::random(10_000, &mut rng);
    for rate in [0.001f64, 0.01, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &r| {
            b.iter(|| {
                let mut c = template.clone();
                ops::bit_flip_mutation(&mut c, r, &mut rng);
                black_box(c)
            })
        });
    }
    group.finish();
}

/// GA-style repeated evaluation: score a whole generation of chromosomes on
/// the paper-scale 100×200 instance. `per_call_alloc` is the pre-batch
/// shape (fresh scratch buffers per chromosome); `serial_batch` reuses one
/// scratch across the generation; `parallel_batch` fans the same scoring
/// out across worker threads (bitwise-identical results).
fn bench_population_fitness(c: &mut Criterion) {
    let mut group = c.benchmark_group("population_fitness");
    group.sample_size(10);
    let problem = instance(100, 200, 5.0);
    let mut r = rng();
    let seed = encode_scheme(&problem, &Sra::new().solve(&problem, &mut r).unwrap());
    let mut population: Vec<(BitString, f64)> = (0..32)
        .map(|_| {
            let mut chromosome = seed.clone();
            ops::bit_flip_mutation(&mut chromosome, 0.02, &mut r);
            (chromosome, 0.0)
        })
        .collect();
    // One pre-pass reaches the repair fixed point (negative-fitness resets),
    // so every timed pass scores the exact same chromosomes.
    evaluate_population(&problem, &mut population, false);

    group.bench_function("per_call_alloc_32", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (chromosome, _) in &population {
                acc = acc.wrapping_add(chromosome_cost(&problem, chromosome));
            }
            black_box(acc)
        })
    });
    group.bench_function("serial_batch_32", |b| {
        b.iter(|| {
            evaluate_population(&problem, &mut population, false);
            black_box(population[0].1)
        })
    });
    group.bench_function("parallel_batch_32", |b| {
        b.iter(|| {
            evaluate_population(&problem, &mut population, true);
            black_box(population[0].1)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_crossover,
    bench_mutation,
    bench_population_fitness
);
criterion_main!(benches);
