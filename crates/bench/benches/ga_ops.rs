//! Microbenchmarks of the GA building blocks: selection schemes, crossover
//! operators and mutation, over GRA-sized chromosomes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drp_ga::{ops, BitString, SelectionScheme};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let mut rng = StdRng::seed_from_u64(1);
    let fitness: Vec<f64> = (0..150).map(|i| (i % 17) as f64 / 17.0).collect();
    for (name, scheme) in [
        ("roulette", SelectionScheme::Roulette),
        ("stochastic_remainder", SelectionScheme::StochasticRemainder),
        ("tournament3", SelectionScheme::Tournament { size: 3 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, s| {
            b.iter(|| black_box(s.allocate(&fitness, 50, &mut rng)))
        });
    }
    group.finish();
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    let mut rng = StdRng::seed_from_u64(2);
    // A GRA-sized chromosome: 50 sites × 200 objects.
    let a = BitString::random(10_000, &mut rng);
    let b2 = BitString::random(10_000, &mut rng);
    group.bench_function("one_point_10k", |b| {
        b.iter(|| black_box(ops::one_point_crossover(&a, &b2, &mut rng)))
    });
    group.bench_function("two_point_10k", |b| {
        b.iter(|| black_box(ops::two_point_crossover(&a, &b2, &mut rng)))
    });
    group.bench_function("uniform_10k", |b| {
        b.iter(|| black_box(ops::uniform_crossover(&a, &b2, &mut rng)))
    });
    group.finish();
}

fn bench_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutation");
    let mut rng = StdRng::seed_from_u64(3);
    let template = BitString::random(10_000, &mut rng);
    for rate in [0.001f64, 0.01, 0.1] {
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &r| {
            b.iter(|| {
                let mut c = template.clone();
                ops::bit_flip_mutation(&mut c, r, &mut rng);
                black_box(c)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_crossover, bench_mutation);
criterion_main!(benches);
