//! Microbenchmarks of the Eq. 4 cost model: full evaluation, the
//! chromosome fast path, and incremental deltas. Quantifies the
//! "incremental cost maintenance" design decision — a delta is O(M·|R_k|)
//! where the full recomputation is O(Σ_k M·|R_k|).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drp_algo::{chromosome_cost, encode_scheme, Sra};
use drp_bench::{instance, rng};
use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, SiteId};
use std::hint::black_box;

/// First feasible (site, object) addition for `scheme`, if any.
fn feasible_add(problem: &Problem, scheme: &ReplicationScheme) -> Option<(SiteId, ObjectId)> {
    problem
        .sites()
        .flat_map(|i| problem.objects().map(move |k| (i, k)))
        .find(|&(i, k)| {
            !scheme.holds(i, k) && problem.object_size(k) <= scheme.free_capacity(problem, i)
        })
}

fn bench_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    for (m, n) in [(20, 50), (50, 100), (100, 200)] {
        let problem = instance(m, n, 5.0);
        let scheme = Sra::new().solve(&problem, &mut rng()).unwrap();
        let bits = encode_scheme(&problem, &scheme);

        group.bench_with_input(
            BenchmarkId::new("full_total_cost", format!("{m}x{n}")),
            &(),
            |b, ()| b.iter(|| black_box(problem.total_cost(black_box(&scheme)))),
        );
        group.bench_with_input(
            BenchmarkId::new("chromosome_cost", format!("{m}x{n}")),
            &(),
            |b, ()| b.iter(|| black_box(chromosome_cost(&problem, black_box(&bits)))),
        );

        // A representative incremental delta: first feasible addition.
        let (site, object) =
            feasible_add(&problem, &scheme).unwrap_or((SiteId::new(0), ObjectId::new(0)));
        if !scheme.holds(site, object) {
            group.bench_with_input(
                BenchmarkId::new("delta_add", format!("{m}x{n}")),
                &(),
                |b, ()| b.iter(|| black_box(problem.delta_add_replica(&scheme, site, object))),
            );
        }
    }
    group.finish();
}

/// The cached evaluator versus full recomputation — GA/annealing-style
/// repeated evaluation. A peek is O(M), a flip O(M)+O(|R_k|), while
/// `total_cost` rescans all N objects; the gap is the point of the design.
fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    for (m, n) in [(20, 50), (50, 100), (100, 200)] {
        let problem = instance(m, n, 5.0);
        let scheme = Sra::new().solve(&problem, &mut rng()).unwrap();
        let Some((site, object)) = feasible_add(&problem, &scheme) else {
            continue;
        };
        let mut eval = CostEvaluator::new(&problem, scheme);

        group.bench_with_input(
            BenchmarkId::new("delta_add_peek", format!("{m}x{n}")),
            &(),
            |b, ()| b.iter(|| black_box(eval.delta_add(black_box(site), black_box(object)))),
        );
        group.bench_with_input(
            BenchmarkId::new("flip_and_undo", format!("{m}x{n}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    eval.apply_add(site, object).unwrap();
                    eval.undo().unwrap();
                    black_box(eval.total())
                })
            },
        );
        // The full-recompute equivalent of one flip evaluation.
        group.bench_with_input(
            BenchmarkId::new("full_recompute", format!("{m}x{n}")),
            &(),
            |b, ()| b.iter(|| black_box(problem.total_cost(black_box(eval.scheme())))),
        );
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_replay");
    group.sample_size(20);
    let problem = instance(15, 30, 5.0);
    let scheme = Sra::new().solve(&problem, &mut rng()).unwrap();
    group.bench_function("replay_15x30", |b| {
        b.iter(|| drp_core::replay::replay_total_cost(&problem, &scheme).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cost_model, bench_evaluator, bench_replay);
criterion_main!(benches);
