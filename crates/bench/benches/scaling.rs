//! Figures 2(a)/2(b): SRA and GRA execution time versus network size.
//!
//! Expected shape (matching the paper): both grow ≈ quadratically with the
//! number of sites, and GRA sits orders of magnitude above SRA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drp_algo::{Gra, GraConfig, Sra};
use drp_bench::{instance, rng};
use drp_core::ReplicationAlgorithm;
use std::hint::black_box;

fn bench_sra_sites(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a_sra_vs_sites");
    for m in [20usize, 40, 80] {
        let problem = instance(m, 100, 5.0);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(Sra::new().solve(&problem, &mut rng()).unwrap()))
        });
    }
    group.finish();
}

fn bench_gra_sites(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_gra_vs_sites");
    group.sample_size(10);
    let config = GraConfig {
        population_size: 20,
        generations: 20,
        ..GraConfig::default()
    };
    for m in [20usize, 40, 80] {
        let problem = instance(m, 100, 5.0);
        let gra = Gra::with_config(config.clone());
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(gra.solve(&problem, &mut rng()).unwrap()))
        });
    }
    group.finish();
}

fn bench_sra_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("sra_vs_objects");
    for n in [50usize, 100, 200] {
        let problem = instance(30, n, 5.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Sra::new().solve(&problem, &mut rng()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sra_sites, bench_gra_sites, bench_sra_objects);
criterion_main!(benches);
