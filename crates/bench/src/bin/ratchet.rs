//! The perf-ratchet CLI: `cargo run --release -p drp-bench --bin ratchet --
//! [--refs DIR] [--current DIR] [--slack X] [--bless]`.
//!
//! Compares every `BENCH_*.json` in `--refs` (default `.`, the committed
//! references at the repository root) against the same-named artifact in
//! `--current` (default `target/bench-current`) and exits non-zero on any
//! regression. `--bless` instead copies the current artifacts over the
//! references — the sanctioned way to record an intentional change.

use std::path::PathBuf;
use std::process::ExitCode;

use drp_bench::ratchet::{self, Tolerance};

struct Args {
    refs: PathBuf,
    current: PathBuf,
    slack: f64,
    bless: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        refs: PathBuf::from("."),
        current: PathBuf::from("target/bench-current"),
        slack: 1.0,
        bless: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--refs" => args.refs = PathBuf::from(value("--refs")),
            "--current" => args.current = PathBuf::from(value("--current")),
            "--slack" => args.slack = value("--slack").parse().expect("--slack takes a number"),
            "--bless" => args.bless = true,
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(args.slack > 0.0, "--slack must be positive");
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    if args.bless {
        match ratchet::bless(&args.refs, &args.current) {
            Ok(copied) if copied.is_empty() => {
                eprintln!(
                    "ratchet: nothing to bless — no BENCH_*.json in {}",
                    args.current.display()
                );
                return ExitCode::FAILURE;
            }
            Ok(copied) => {
                for name in &copied {
                    println!("blessed {name}");
                }
                return ExitCode::SUCCESS;
            }
            Err(message) => {
                eprintln!("ratchet: {message}");
                return ExitCode::FAILURE;
            }
        }
    }

    let tolerance = Tolerance::with_slack(args.slack);
    match ratchet::run(&args.refs, &args.current, &tolerance) {
        Ok(outcome) => {
            if outcome.checked.is_empty() {
                eprintln!(
                    "ratchet: no BENCH_*.json references in {}",
                    args.refs.display()
                );
                return ExitCode::FAILURE;
            }
            for name in &outcome.checked {
                println!("checked {name}");
            }
            if outcome.violations.is_empty() {
                println!(
                    "ratchet holds: {} artifact(s), 0 regressions",
                    outcome.checked.len()
                );
                ExitCode::SUCCESS
            } else {
                for violation in &outcome.violations {
                    eprintln!("REGRESSION {violation}");
                }
                eprintln!(
                    "ratchet failed: {} regression(s); bench artifacts drifted — \
                     fix the regression or re-bless with --bless",
                    outcome.violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("ratchet: {message}");
            ExitCode::FAILURE
        }
    }
}
