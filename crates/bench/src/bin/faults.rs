//! Fault-injector overhead timings: `cargo run --release -p drp-bench
//! --bin faults [out.json]` writes `BENCH_faults.json`.
//!
//! For each paper-style instance size it drives the self-healing replay
//! of `drp_algo::repair` three ways and reports simulator events per
//! second:
//!
//! * **injector off** — `run_faulted` with no `FaultPlan`: the engine
//!   never consults fault state (the regression baseline);
//! * **empty plan** — a seeded plan with no crashes, drops or jitter:
//!   the injector is armed and consulted on every send but never acts,
//!   isolating the pure bookkeeping overhead;
//! * **active plan** — two crashes plus 1% drops and jitter: the full
//!   machinery including retries and repair.
//!
//! The artifact uses the shared [`drp_bench::report`] shape; the budget
//! block asserts the off-vs-empty overhead stays small.

use drp_algo::fault_tolerance::ensure_min_degree;
use drp_algo::repair::{run_faulted, FaultedRun, RepairConfig};
use drp_algo::Sra;
use drp_bench::report::{Budget, Fields, Report};
use drp_bench::{instance, rng};
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme};
use drp_net::sim::FaultPlan;
use std::time::Instant;

/// The armed-but-inert injector must cost no more than this over the
/// injector-off baseline (generous: single-core CI runners are noisy).
const OVERHEAD_BUDGET_PERCENT: f64 = 15.0;

/// Timed repetitions per configuration (repair runs are milliseconds).
const REPS: u32 = 30;

fn timed_events_per_sec(
    problem: &Problem,
    scheme: &ReplicationScheme,
    plan: impl Fn() -> Option<FaultPlan>,
) -> (f64, u64) {
    let config = RepairConfig::default();
    // Warm up and capture the (deterministic) event count.
    let warm: FaultedRun = run_faulted(problem, scheme, plan(), config.clone()).unwrap();
    let events = warm.events;
    let started = Instant::now();
    for _ in 0..REPS {
        let run = run_faulted(problem, scheme, plan(), config.clone()).unwrap();
        assert_eq!(run.events, events, "repair replay must be deterministic");
        std::hint::black_box(run.report.reads_total);
    }
    let secs = started.elapsed().as_secs_f64() / f64::from(REPS);
    (events as f64 / secs, events)
}

struct Row {
    sites: usize,
    objects: usize,
    off_events_per_sec: f64,
    empty_events_per_sec: f64,
    active_events_per_sec: f64,
    events_off: u64,
    events_active: u64,
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = instance(sites, objects, 8.0);
    let mut r = rng();
    let mut scheme = Sra::new().solve(&problem, &mut r).unwrap();
    ensure_min_degree(&problem, &mut scheme, 2).unwrap();

    let (off, events_off) = timed_events_per_sec(&problem, &scheme, || None);
    let (empty, _) = timed_events_per_sec(&problem, &scheme, || Some(FaultPlan::new(11)));
    let (active, events_active) = timed_events_per_sec(&problem, &scheme, || {
        Some(
            FaultPlan::new(11)
                .crash(1 % sites, 60, 420)
                .crash(3 % sites, 150, 600)
                .drop_probability(0.01)
                .jitter(1),
        )
    });

    Row {
        sites,
        objects,
        off_events_per_sec: off,
        empty_events_per_sec: empty,
        active_events_per_sec: active,
        events_off,
        events_active,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_faults.json".to_string());

    let rows: Vec<Row> = [(10, 20), (20, 40), (40, 80)]
        .into_iter()
        .map(|(m, n)| bench_size(m, n))
        .collect();

    // Injector-off vs armed-but-inert: the pure cost of consulting the
    // plan on every send. Active runs also do more *work* (retries,
    // repair), so their events/sec is reported but not an overhead.
    let overhead = |row: &Row| -> f64 {
        100.0 * (row.off_events_per_sec - row.empty_events_per_sec) / row.off_events_per_sec
    };
    let max_overhead = rows.iter().map(overhead).fold(f64::MIN, f64::max);
    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "events_per_sec")
            .int("reps", u64::from(REPS)),
    );
    let mut report = Report::new(
        "faults",
        config,
        Budget::at_most(
            "max_injector_overhead_percent",
            OVERHEAD_BUDGET_PERCENT,
            max_overhead,
        ),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .int("events_off", row.events_off)
                .int("events_active", row.events_active)
                .float("off_events_per_sec", row.off_events_per_sec, 0)
                .float("empty_plan_events_per_sec", row.empty_events_per_sec, 0)
                .float("active_events_per_sec", row.active_events_per_sec, 0)
                .float("injector_overhead_percent", overhead(row), 2),
        );
    }
    report.write(&out_path);
}
