//! Durability overhead benchmark: `cargo run --release -p drp-bench
//! --bin wal [out.json]` writes `BENCH_wal.json`.
//!
//! For each instance size it runs the same drifting monitor-policy service
//! twice — once in memory, once journaling every commit point to a WAL —
//! and reports the wall-clock overhead of durable mode, the log footprint,
//! and two parity flags: the durable run's [`ServiceReport`] fingerprint
//! must equal the in-memory run's, and a recovery from a truncated log
//! must reproduce it bitwise.
//!
//! The store is in-memory (the same code path the crash simulator
//! exercises), so the measured overhead is the journaling machinery
//! itself — record encoding, checkpoint compaction, recovery bookkeeping —
//! not the host's fsync latency, which would swamp a CI ratchet. The
//! budget keeps that machinery under 5% of the serving loop.
//!
//! [`ServiceReport`]: drp_serve::ServiceReport

use drp_bench::report::{Budget, Fields, Report};
use drp_serve::{run_service, run_service_durable, MemWalStore, Policy, ServeConfig, WalTuning};
use drp_workload::{PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Durable mode may cost at most this much over the in-memory loop.
const OVERHEAD_BUDGET_PERCENT: f64 = 5.0;

const SEED: u64 = 0xd04b1e;
const EPOCHS: usize = 4;
const PERIOD: u64 = 256;
const NIGHT_EVERY: usize = 3;
const CHECKPOINT_EVERY: usize = 2;
const REPS: usize = 9;

fn drift() -> PatternChange {
    PatternChange {
        change_percent: 500.0,
        objects_percent: 40.0,
        read_share: 0.9,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        policy: Policy::Monitor,
        epochs: EPOCHS,
        period: PERIOD,
        seed: SEED,
        night_every: NIGHT_EVERY,
        drift: Some(drift()),
        wal: WalTuning {
            checkpoint_every: CHECKPOINT_EVERY,
        },
        ..ServeConfig::default()
    }
}

struct Row {
    sites: usize,
    objects: usize,
    plain_ms: f64,
    durable_ms: f64,
    overhead_percent: f64,
    wal_bytes: u64,
    parity: bool,
    recovery_parity: bool,
    fingerprint: String,
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = WorkloadSpec::paper(sites, objects, 6.0, 35.0)
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("benchmark instance generates");
    let config = config();

    // One untimed warmup of each mode, then interleaved timed reps. The
    // journaling overhead is a couple percent at most — far below the slow
    // multi-second drift shared CI runners show — so the overhead estimate
    // is the *median* of the per-pair durable/plain ratios: each pair runs
    // back to back under (nearly) the same machine conditions, and the
    // median shrugs off the pairs a noise spike lands in.
    let plain_fp = run_service(&problem, &config)
        .expect("service runs")
        .fingerprint();
    let mut warm = MemWalStore::default();
    run_service_durable(&problem, &config, &mut warm).expect("durable runs");

    let mut plain_ms = f64::MAX;
    let mut durable_ms = f64::MAX;
    let mut ratios = Vec::with_capacity(REPS);
    let mut durable_fp = 0u64;
    let mut wal_bytes = Vec::new();
    for rep in 0..REPS {
        let time_plain = || {
            let started = Instant::now();
            run_service(&problem, &config).expect("service runs");
            started.elapsed().as_secs_f64() * 1e3
        };
        let time_durable = || {
            let mut store = MemWalStore::default();
            let started = Instant::now();
            let outcome = run_service_durable(&problem, &config, &mut store).expect("durable runs");
            let ms = started.elapsed().as_secs_f64() * 1e3;
            (ms, outcome.report.fingerprint(), store.bytes().to_vec())
        };
        // Alternate which mode runs first so cache/allocator position
        // effects inside a pair cancel out across the median.
        let (plain, (durable, fp, bytes)) = if rep % 2 == 0 {
            let p = time_plain();
            (p, time_durable())
        } else {
            let d = time_durable();
            (time_plain(), d)
        };
        plain_ms = plain_ms.min(plain);
        durable_ms = durable_ms.min(durable);
        ratios.push(durable / plain);
        durable_fp = fp;
        wal_bytes = bytes;
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];

    // Crash the log at 60% and recover: bitwise the same report.
    let cut = wal_bytes.len() * 3 / 5;
    let mut torn = MemWalStore::from_bytes(wal_bytes[..cut].to_vec());
    let recovered = run_service_durable(&problem, &config, &mut torn).expect("recovery runs");

    Row {
        sites,
        objects,
        plain_ms,
        durable_ms,
        overhead_percent: (median_ratio - 1.0) * 100.0,
        wal_bytes: wal_bytes.len() as u64,
        parity: durable_fp == plain_fp,
        recovery_parity: recovered.report.fingerprint() == plain_fp,
        fingerprint: format!("{plain_fp:016x}"),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_wal.json".to_string());

    let rows: Vec<Row> = [(10, 16), (12, 20)]
        .iter()
        .map(|&(sites, objects)| bench_size(sites, objects))
        .collect();

    let worst_overhead = rows
        .iter()
        .map(|r| r.overhead_percent)
        .fold(f64::MIN, f64::max);

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "percent")
            .int("seed", SEED)
            .int("epochs", EPOCHS as u64)
            .int("period", PERIOD)
            .int("night_every", NIGHT_EVERY as u64)
            .int("checkpoint_every", CHECKPOINT_EVERY as u64)
            .int("reps", REPS as u64),
    );
    let mut report = Report::new(
        "wal",
        config,
        Budget::at_most(
            "durable_overhead_percent",
            OVERHEAD_BUDGET_PERCENT,
            worst_overhead,
        ),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .float("plain_ms", row.plain_ms, 2)
                .float("durable_ms", row.durable_ms, 2)
                .float("overhead_percent", row.overhead_percent, 2)
                .int("wal_bytes", row.wal_bytes)
                .flag("parity", row.parity)
                .flag("recovery_parity", row.recovery_parity)
                .text("fingerprint", &row.fingerprint),
        );
    }
    report.write(&out_path);
}
