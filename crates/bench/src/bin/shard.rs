//! Sharded-solver benchmark: `cargo run --release -p drp-bench --bin shard
//! [out.json] [--parity-sites 1000] [--big-sites 10000] [--objects 80]
//! [--shards 0] [--pop 16] [--gens 24] [--budget-ratio 1.05]
//! [--budget-ms 60000]` writes `BENCH_shard.json`.
//!
//! Two samples on hierarchical (clustered LAN/WAN) topologies:
//!
//! * **parity** at `--parity-sites`: the instance is small enough to also
//!   solve flat, so the sharded NTC is divided by the flat GRA's NTC and
//!   the ratio must clear `--budget-ratio` — the "within a few percent"
//!   contract from the paper-scale regime;
//! * **big** at `--big-sites`: sharded-only territory where a dense
//!   `M x M` cost matrix would not even fit; wall clock is the headline
//!   and must clear `--budget-ms`.
//!
//! Placement fingerprints are identity fields: the ratchet pins them, so
//! any nondeterminism across machines, thread counts or feature flags
//! shows up as a CI regression.

use drp_algo::shard::{ShardConfig, ShardedSolver};
use drp_algo::{Gra, GraConfig};
use drp_bench::report::{Budget, Fields, Report};
use drp_core::ReplicationAlgorithm;
use drp_workload::{TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Everything downstream of instance generation is seeded from here.
const SEED: u64 = 0x5a4d;

struct Args {
    out_path: String,
    parity_sites: usize,
    big_sites: usize,
    objects: usize,
    shards: usize,
    pop: usize,
    gens: usize,
    budget_ratio: f64,
    budget_ms: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_path: "BENCH_shard.json".to_string(),
        parity_sites: 1000,
        big_sites: 10_000,
        objects: 80,
        shards: 0,
        pop: 16,
        gens: 24,
        budget_ratio: 1.05,
        budget_ms: 60_000.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--parity-sites" => {
                args.parity_sites = value("--parity-sites").parse().expect("--parity-sites");
            }
            "--big-sites" => args.big_sites = value("--big-sites").parse().expect("--big-sites"),
            "--objects" => args.objects = value("--objects").parse().expect("--objects"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards"),
            "--pop" => args.pop = value("--pop").parse().expect("--pop"),
            "--gens" => args.gens = value("--gens").parse().expect("--gens"),
            "--budget-ratio" => {
                args.budget_ratio = value("--budget-ratio").parse().expect("--budget-ratio");
            }
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("--budget-ms"),
            other if !other.starts_with("--") => args.out_path = other.to_string(),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Roughly 250 sites per shard, at least two shards, unless overridden.
fn shard_count(m: usize, requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        (m / 250).max(2)
    }
}

fn spec(m: usize, n: usize, clusters: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper(m, n, 5.0, 30.0);
    spec.topology = TopologyKind::Hierarchical {
        clusters,
        wan_factor: 10,
    };
    spec
}

fn solver(shards: usize, pop: usize, gens: usize) -> ShardedSolver {
    ShardedSolver::with_config(ShardConfig {
        shards,
        gra: GraConfig {
            population_size: pop,
            generations: gens,
            ..GraConfig::default()
        },
        ..ShardConfig::default()
    })
}

fn main() {
    let args = parse_args();

    // Parity sample: flat GRA and the sharded driver on the same instance.
    let parity_shards = shard_count(args.parity_sites, args.shards);
    let sp = spec(args.parity_sites, args.objects, parity_shards)
        .generate_sparse(&mut StdRng::seed_from_u64(SEED))
        .expect("parity instance generates");
    let started = Instant::now();
    let dense = sp.to_dense().expect("dense view builds");
    let flat_scheme = Gra::with_config(GraConfig {
        population_size: args.pop,
        generations: args.gens,
        ..GraConfig::default()
    })
    .solve(&dense, &mut StdRng::seed_from_u64(SEED))
    .expect("flat GRA solves");
    let flat_ms = started.elapsed().as_secs_f64() * 1e3;
    let flat_ntc = dense.total_cost(&flat_scheme);

    let started = Instant::now();
    let parity_outcome = solver(parity_shards, args.pop, args.gens)
        .solve(&sp, SEED)
        .expect("sharded solve at parity size");
    let parity_ms = started.elapsed().as_secs_f64() * 1e3;
    sp.validate_placement(&parity_outcome.placement)
        .expect("parity placement is feasible");
    let ntc_ratio = parity_outcome.ntc as f64 / flat_ntc as f64;

    // Big sample: sharded only — a dense M x M matrix would be 100M cells.
    let big_shards = shard_count(args.big_sites, args.shards);
    let big_sp = spec(args.big_sites, args.objects, big_shards)
        .generate_sparse(&mut StdRng::seed_from_u64(SEED ^ 1))
        .expect("big instance generates");
    let started = Instant::now();
    let big_outcome = solver(big_shards, args.pop, args.gens)
        .solve(&big_sp, SEED)
        .expect("sharded solve at big size");
    let big_ms = started.elapsed().as_secs_f64() * 1e3;
    big_sp
        .validate_placement(&big_outcome.placement)
        .expect("big placement is feasible");

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ms")
            .int("objects", args.objects as u64)
            .int("population", args.pop as u64)
            .int("generations", args.gens as u64),
    );
    let mut report = Report::new(
        "shard",
        config,
        Budget::at_most("sharded_solve_ms_at_largest_m", args.budget_ms, big_ms),
    );
    report.sample(
        Fields::new()
            .text("kind", "parity")
            .int("sites", args.parity_sites as u64)
            .int("shards", parity_shards as u64)
            .float("flat_gra_ms", flat_ms, 2)
            .float("sharded_ms", parity_ms, 2)
            .int("flat_ntc", flat_ntc)
            .int("sharded_ntc", parity_outcome.ntc)
            .float("ntc_ratio", ntc_ratio, 4)
            .flag("ntc_parity", ntc_ratio <= args.budget_ratio)
            .float("savings", parity_outcome.savings_percent(), 2)
            .int("refine_moves", parity_outcome.report.refine_moves as u64)
            .text(
                "fingerprint",
                &format!("{:016x}", parity_outcome.fingerprint()),
            ),
    );
    report.sample(
        Fields::new()
            .text("kind", "big")
            .int("sites", args.big_sites as u64)
            .int("shards", big_shards as u64)
            .float("sharded_ms", big_ms, 2)
            .int("sharded_ntc", big_outcome.ntc)
            .float("savings", big_outcome.savings_percent(), 2)
            .int("border_placed", big_outcome.report.border_placed as u64)
            .int("refine_moves", big_outcome.report.refine_moves as u64)
            .text(
                "fingerprint",
                &format!("{:016x}", big_outcome.fingerprint()),
            ),
    );
    report.write(&args.out_path);
    assert!(
        ntc_ratio <= args.budget_ratio,
        "sharded NTC at M={} is {ntc_ratio:.4}x the flat GRA's, over the {} budget",
        args.parity_sites,
        args.budget_ratio
    );
}
