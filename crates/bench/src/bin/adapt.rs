//! Closed-loop adaptation benchmark: `cargo run --release -p drp-bench
//! --bin adapt [out.json]` writes `BENCH_adapt.json`.
//!
//! For each paper-style tree instance it runs the `drp_serve` service loop
//! under pattern drift with all three adaptation policies and reports the
//! measured bill — serving NTC plus the migration NTC each policy's
//! reconfigurations cost — together with the wall-clock per run and the
//! deterministic [`ServiceReport`](drp_serve::ServiceReport) fingerprint.
//!
//! The budget asserts the paper's adaptive-beats-frozen claim end to end:
//! the worst monitor/static total-NTC ratio across instance sizes must stay
//! at or below 1.0. The fingerprints let CI assert bitwise determinism
//! across `--features parallel` and `DRP_THREADS` settings by diffing the
//! artifact of two builds.

use drp_bench::report::{Budget, Fields, Report};
use drp_serve::{run_service, Policy, ServeConfig};
use drp_workload::{PatternChange, TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Adaptive must not bill more than frozen under this much drift.
const RATIO_BUDGET: f64 = 1.0;

const SEED: u64 = 0x5e13e;
const EPOCHS: usize = 4;
const PERIOD: u64 = 256;
const NIGHT_EVERY: usize = 3;

fn drift() -> PatternChange {
    PatternChange {
        change_percent: 500.0,
        objects_percent: 40.0,
        read_share: 0.9,
    }
}

struct Row {
    sites: usize,
    objects: usize,
    policy: &'static str,
    serving_ntc: u64,
    migration_ntc: u64,
    total_ntc: u64,
    moves: u64,
    adaptations: u64,
    rebuilds: u64,
    elapsed_ms: f64,
    fingerprint: String,
}

fn bench_policy(sites: usize, objects: usize, policy: Policy) -> Row {
    // ADR only runs on tree metrics, so every policy serves on the same
    // binary tree to keep the comparison apples-to-apples.
    let mut spec = WorkloadSpec::paper(sites, objects, 6.0, 35.0);
    spec.topology = TopologyKind::Tree { arity: 2 };
    let problem = spec
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("benchmark instance generates");
    let config = ServeConfig {
        policy,
        epochs: EPOCHS,
        period: PERIOD,
        seed: SEED,
        night_every: NIGHT_EVERY,
        drift: Some(drift()),
        ..ServeConfig::default()
    };
    let started = Instant::now();
    let report = run_service(&problem, &config).expect("service runs");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let t = report.totals;
    Row {
        sites,
        objects,
        policy: policy.name(),
        serving_ntc: t.serving_ntc,
        migration_ntc: t.migration_ntc,
        total_ntc: t.total_ntc,
        moves: t.migration_moves,
        adaptations: t.adaptations,
        rebuilds: t.rebuilds,
        elapsed_ms,
        fingerprint: format!("{:016x}", report.fingerprint()),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_adapt.json".to_string());

    let mut rows = Vec::new();
    for (sites, objects) in [(8, 12), (12, 20)] {
        for policy in [Policy::Static, Policy::Monitor, Policy::Adr] {
            rows.push(bench_policy(sites, objects, policy));
        }
    }

    // Worst monitor/static ratio across sizes; rows come in fixed
    // static-monitor-adr triples per size.
    let worst_ratio = rows
        .chunks(3)
        .map(|triple| triple[1].total_ntc as f64 / (triple[0].total_ntc as f64).max(1.0))
        .fold(f64::MIN, f64::max);

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ntc")
            .int("seed", SEED)
            .int("epochs", EPOCHS as u64)
            .int("period", PERIOD)
            .int("night_every", NIGHT_EVERY as u64)
            .float("drift_change_percent", drift().change_percent, 0)
            .float("drift_objects_percent", drift().objects_percent, 0)
            .float("drift_read_share", drift().read_share, 2),
    );
    let mut report = Report::new(
        "adapt",
        config,
        Budget::at_most("monitor_over_static_ntc_ratio", RATIO_BUDGET, worst_ratio),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .text("policy", row.policy)
                .int("serving_ntc", row.serving_ntc)
                .int("migration_ntc", row.migration_ntc)
                .int("total_ntc", row.total_ntc)
                .int("moves", row.moves)
                .int("adaptations", row.adaptations)
                .int("rebuilds", row.rebuilds)
                .float("elapsed_ms", row.elapsed_ms, 1)
                .text("fingerprint", &row.fingerprint),
        );
    }
    report.write(&out_path);
}
