//! Prediction-policy benchmark: `cargo run --release -p drp-bench
//! --bin predict [out.json]` writes `BENCH_predict.json`.
//!
//! Runs the policy × scenario matrix — the reactive monitor against both
//! predictive policies on every named workload scenario — with each run
//! scored by the offline-optimal replay oracle. Every sample carries the
//! cell's total NTC, its competitive ratio and the deterministic report
//! fingerprint (CI diffs the artifact of two builds to assert bitwise
//! determinism across `--features parallel` and `DRP_THREADS`).
//!
//! The budget is the paper-extension claim baked into CI: across all
//! scenarios the *worst* predictive/monitor total-NTC ratio must stay at or
//! below [`RATIO_BUDGET`] — prediction may spend a little on wrong guesses
//! but must never lose more than 5% to the reactive baseline. Two stronger
//! claims are hard asserts: on the periodic scenarios (diurnal,
//! flash-crowd) the *best* predictive policy must strictly beat the
//! reactive monitor, and every competitive ratio must be >= 1.0.

use drp_bench::report::{Budget, Fields, Report};
use drp_serve::{run_service_with_oracle, HotKeyConfig, Policy, ServeConfig};
use drp_workload::{Scenario, TopologyKind, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Predictive may never bill more than 5% over the reactive monitor.
const RATIO_BUDGET: f64 = 1.05;

const SEED: u64 = 0x9e0d1c7;
const SITES: usize = 8;
const OBJECTS: usize = 12;
const EPOCHS: usize = 6;
const PERIOD: u64 = 256;

/// `(label, policy, hot fast path)` — the predictive family runs with the
/// hot fast path on: forecast pre-staging of replica boosts is part of it.
const POLICIES: [(&str, Policy, bool); 3] = [
    ("monitor", Policy::Monitor, false),
    ("predictive-ewma", Policy::PredictiveEwma, true),
    ("predictive-regression", Policy::PredictiveRegression, true),
];

struct Row {
    scenario: &'static str,
    policy: &'static str,
    serving_ntc: u64,
    migration_ntc: u64,
    total_ntc: u64,
    adaptations: u64,
    competitive_ratio: f64,
    opt_ntc: u64,
    elapsed_ms: f64,
    fingerprint: String,
}

fn bench_cell(scenario: Scenario, label: &'static str, policy: Policy, hot: bool) -> Row {
    let mut spec = WorkloadSpec::paper(SITES, OBJECTS, 6.0, 35.0);
    spec.topology = TopologyKind::Tree { arity: 2 };
    let problem = spec
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("benchmark instance generates");
    let config = ServeConfig {
        policy,
        epochs: EPOCHS,
        period: PERIOD,
        seed: SEED,
        scenario: Some(scenario),
        hot: hot.then(HotKeyConfig::default),
        ..ServeConfig::default()
    };
    let started = Instant::now();
    let (report, oracle) = run_service_with_oracle(&problem, &config).expect("service runs");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let t = report.totals;
    Row {
        scenario: scenario.name(),
        policy: label,
        serving_ntc: t.serving_ntc,
        migration_ntc: t.migration_ntc,
        total_ntc: t.total_ntc,
        adaptations: t.adaptations,
        competitive_ratio: oracle.competitive_ratio,
        opt_ntc: oracle.opt_ntc,
        elapsed_ms,
        fingerprint: format!("{:016x}", report.fingerprint()),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_predict.json".to_string());

    let mut rows = Vec::new();
    for scenario in Scenario::ALL {
        for (label, policy, hot) in POLICIES {
            rows.push(bench_cell(scenario, label, policy, hot));
        }
    }

    // Every cell's online cost is bounded below by its oracle.
    for row in &rows {
        assert!(
            row.competitive_ratio >= 1.0,
            "{}/{}: competitive ratio {} < 1.0",
            row.scenario,
            row.policy,
            row.competitive_ratio
        );
    }

    // Rows come in fixed monitor/ewma/regression triples per scenario.
    let mut worst_ratio = f64::MIN;
    for triple in rows.chunks(3) {
        let monitor = triple[0].total_ntc as f64;
        let best_predictive = triple[1].total_ntc.min(triple[2].total_ntc) as f64;
        for predictive in &triple[1..] {
            worst_ratio = worst_ratio.max(predictive.total_ntc as f64 / monitor.max(1.0));
        }
        // Foresight must pay on the periodic scenarios.
        if matches!(triple[0].scenario, "diurnal" | "flash-crowd") {
            assert!(
                best_predictive < monitor,
                "{}: best predictive {} must beat reactive monitor {}",
                triple[0].scenario,
                best_predictive,
                monitor
            );
        }
    }

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ntc")
            .int("seed", SEED)
            .int("sites", SITES as u64)
            .int("objects", OBJECTS as u64)
            .int("epochs", EPOCHS as u64)
            .int("period", PERIOD),
    );
    let mut report = Report::new(
        "predict",
        config,
        Budget::at_most(
            "predictive_over_monitor_ntc_ratio",
            RATIO_BUDGET,
            worst_ratio,
        ),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .text("scenario", row.scenario)
                .text("policy", row.policy)
                .int("serving_ntc", row.serving_ntc)
                .int("migration_ntc", row.migration_ntc)
                .int("total_ntc", row.total_ntc)
                .int("adaptations", row.adaptations)
                .float("competitive_ratio", row.competitive_ratio, 4)
                .int("opt_ntc", row.opt_ntc)
                .float("elapsed_ms", row.elapsed_ms, 1)
                .text("fingerprint", &row.fingerprint),
        );
    }
    report.write(&out_path);
}
