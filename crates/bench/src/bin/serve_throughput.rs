//! Ingestion front-end benchmark: `cargo run --release -p drp-bench --bin
//! serve_throughput [out.json] [--sites 1000] [--objects 40] [--reps 3]
//! [--budget-reqs 1e6]` writes `BENCH_serve_throughput.json`.
//!
//! Drives [`drp_serve::ingest_epoch`] directly — the streaming driver,
//! the sharded routing over bounded channels and the per-site admission
//! sort, without the serving simulator behind it — at the paper-scale
//! M=1000 and reports requests per second for 1, 2 and 4 shard workers.
//! The budget asserts the headline claim: at least `--budget-reqs`
//! requests per second with two workers.
//!
//! Two determinism certificates ride along as ratchet identity:
//!
//! * the FNV hash of the admitted queues plus the admission report must
//!   be identical across every thread count (`ingest_parity`);
//! * a small closed-loop service run with the hot-object fast path on
//!   must fingerprint identically at `threads` 1 and 2
//!   (`service_thread_parity`), bill no more total NTC than the same run
//!   with the fast path off (`hot_ntc_ok`), and its promotion/demotion
//!   counts are pinned exactly.

use drp_bench::report::{Budget, Fields, Report};
use drp_core::{DenseMatrix, Problem};
use drp_serve::{
    ingest_epoch, run_service, HotKeyConfig, IngestScratch, IngestSpec, Policy, ServeConfig,
};
use drp_workload::{PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const SEED: u64 = 0x1463;

struct Args {
    out_path: String,
    sites: usize,
    objects: usize,
    period: u64,
    reps: usize,
    budget_reqs: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_path: "BENCH_serve_throughput.json".to_string(),
        sites: 1000,
        objects: 40,
        period: 512,
        reps: 3,
        budget_reqs: 1e6,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--sites" => args.sites = value("--sites").parse().expect("--sites"),
            "--objects" => args.objects = value("--objects").parse().expect("--objects"),
            "--period" => args.period = value("--period").parse().expect("--period"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--budget-reqs" => {
                args.budget_reqs = value("--budget-reqs").parse().expect("--budget-reqs");
            }
            other if !other.starts_with("--") => args.out_path = other.to_string(),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// FNV-1a over the admitted queues and the per-site admission report: the
/// cross-thread-count determinism certificate.
fn ingest_hash(scratch: &IngestScratch, outcome: &drp_serve::IngestOutcome) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for queue in &scratch.queues {
        eat(queue.len() as u64);
        for &(time, object, write) in queue {
            eat(time);
            eat(object as u64);
            eat(u64::from(write));
        }
    }
    for site in 0..outcome.report.offered_by_site.len() {
        eat(outcome.report.offered_by_site[site]);
        eat(outcome.report.shed_by_site[site]);
        eat(outcome.report.admitted_by_site[site]);
    }
    eat(outcome.admitted_reads);
    eat(outcome.admitted_writes);
    hash
}

struct IngestRow {
    threads: usize,
    offered: u64,
    shed: u64,
    elapsed_ms: f64,
    req_per_sec: f64,
    hash: u64,
}

/// Times `reps` ingested epochs at one worker count. The first rep's hash
/// certifies the run; all reps share it (same seed, asserted).
fn bench_ingest(problem: &Problem, args: &Args, threads: usize, admission_limit: u64) -> IngestRow {
    let m = problem.num_sites();
    let n = problem.num_objects();
    let spec = IngestSpec {
        problem,
        period: args.period,
        seed: SEED,
        admission_limit,
        threads,
        batch: 0,
        depth: 0,
    };
    let mut scratch = IngestScratch::new();
    let mut reads = DenseMatrix::zeros(m, n);
    let mut writes = DenseMatrix::zeros(m, n);
    // Warm-up: grow the scratch buffers outside the timed region.
    let warm = ingest_epoch(&spec, &mut scratch, &mut reads, &mut writes);
    let hash = ingest_hash(&scratch, &warm);

    let mut offered = 0u64;
    let mut shed = 0u64;
    let started = Instant::now();
    for _ in 0..args.reps {
        let mut reads = DenseMatrix::zeros(m, n);
        let mut writes = DenseMatrix::zeros(m, n);
        let out = ingest_epoch(&spec, &mut scratch, &mut reads, &mut writes);
        offered += out.report.offered();
        shed += out.report.shed();
        assert_eq!(
            ingest_hash(&scratch, &out),
            hash,
            "ingest drifted across reps"
        );
    }
    let elapsed = started.elapsed().as_secs_f64();
    IngestRow {
        threads,
        offered,
        shed,
        elapsed_ms: elapsed * 1e3,
        req_per_sec: offered as f64 / elapsed.max(1e-9),
        hash,
    }
}

/// A per-site admission cap that sheds the top decile of sites, so the
/// backpressure accounting is exercised with a deterministic shed count.
fn shedding_limit(problem: &Problem, args: &Args) -> u64 {
    let spec = IngestSpec {
        problem,
        period: args.period,
        seed: SEED,
        admission_limit: 0,
        threads: 1,
        batch: 0,
        depth: 0,
    };
    let mut scratch = IngestScratch::new();
    let mut reads = DenseMatrix::zeros(problem.num_sites(), problem.num_objects());
    let mut writes = DenseMatrix::zeros(problem.num_sites(), problem.num_objects());
    let out = ingest_epoch(&spec, &mut scratch, &mut reads, &mut writes);
    let mut by_site = out.report.offered_by_site.clone();
    by_site.sort_unstable();
    by_site[by_site.len() * 9 / 10].max(1)
}

struct ServiceRow {
    total_ntc: u64,
    hot_promotions: u64,
    hot_demotions: u64,
    fingerprint: u64,
}

/// One small closed-loop service run under drift; `hot` toggles the
/// fast path, `threads` the ingestion workers.
fn bench_service(hot: bool, threads: usize) -> ServiceRow {
    let spec = WorkloadSpec::paper(24, 16, 6.0, 35.0);
    let problem = spec
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("service instance generates");
    let config = ServeConfig {
        policy: Policy::Monitor,
        epochs: 4,
        period: 256,
        seed: SEED,
        night_every: 3,
        drift: Some(PatternChange {
            change_percent: 500.0,
            objects_percent: 40.0,
            read_share: 0.9,
        }),
        threads,
        hot: hot.then(HotKeyConfig::default),
        ..ServeConfig::default()
    };
    let report = run_service(&problem, &config).expect("service runs");
    ServiceRow {
        total_ntc: report.totals.total_ntc,
        hot_promotions: report.totals.hot_promotions,
        hot_demotions: report.totals.hot_demotions,
        fingerprint: report.fingerprint(),
    }
}

fn main() {
    let args = parse_args();
    let problem = WorkloadSpec::paper(args.sites, args.objects, 10.0, 25.0)
        .generate(&mut StdRng::seed_from_u64(SEED))
        .expect("ingest instance generates");
    let admission_limit = shedding_limit(&problem, &args);

    let rows: Vec<IngestRow> = [1usize, 2, 4]
        .iter()
        .map(|&t| bench_ingest(&problem, &args, t, admission_limit))
        .collect();
    let parity = rows.iter().all(|r| r.hash == rows[0].hash);
    let budget_row = &rows[1]; // threads == 2, the headline configuration

    let hot_on = bench_service(true, 1);
    let hot_on_t2 = bench_service(true, 2);
    let hot_off = bench_service(false, 1);

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "req/s")
            .int("seed", SEED)
            .int("sites", args.sites as u64)
            .int("objects", args.objects as u64)
            .int("period", args.period)
            .int("reps", args.reps as u64)
            .int("admission_limit", admission_limit),
    );
    let mut report = Report::new(
        "serve_throughput",
        config,
        Budget::at_least(
            "ingest_req_per_sec_two_workers",
            args.budget_reqs,
            budget_row.req_per_sec,
        ),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .text("kind", "ingest")
                .int("threads", row.threads as u64)
                .int("offered", row.offered)
                .int("shed", row.shed)
                .float("elapsed_ms", row.elapsed_ms, 2)
                .float("req_per_sec", row.req_per_sec, 0)
                .text("queue_hash", &format!("{:016x}", row.hash))
                .flag("ingest_parity", parity),
        );
    }
    report.sample(
        Fields::new()
            .text("kind", "hot_service")
            .int("sites", 24)
            .int("objects", 16)
            .int("epochs", 4)
            .int("hot_promotions", hot_on.hot_promotions)
            .int("hot_demotions", hot_on.hot_demotions)
            .int("total_ntc_hot", hot_on.total_ntc)
            .int("total_ntc_baseline", hot_off.total_ntc)
            .flag("hot_ntc_ok", hot_on.total_ntc <= hot_off.total_ntc)
            .text("fingerprint_hot", &format!("{:016x}", hot_on.fingerprint))
            .text(
                "fingerprint_baseline",
                &format!("{:016x}", hot_off.fingerprint),
            )
            .flag(
                "service_thread_parity",
                hot_on.fingerprint == hot_on_t2.fingerprint,
            ),
    );
    report.write(&args.out_path);
    assert!(parity, "ingest hash differs across worker counts");
    assert_eq!(
        hot_on.fingerprint, hot_on_t2.fingerprint,
        "service fingerprint differs across ingestion worker counts"
    );
    assert!(
        budget_row.req_per_sec >= args.budget_reqs,
        "two-worker ingest ran at {:.0} req/s, under the {:.0} floor",
        budget_row.req_per_sec,
        args.budget_reqs
    );
}
