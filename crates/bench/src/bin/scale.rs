//! Scale benchmark of the kernel pass: `cargo run --release -p drp-bench
//! --bin scale [out.json] [--sites 100,300,1000] [--objects 60] [--pop 16]
//! [--gens 8] [--budget-speedup 3.0]` writes `BENCH_scale.json`.
//!
//! For each site count it times:
//!
//! * **build_legacy_ms** — the pre-pool dense all-pairs build: sequential
//!   Floyd–Warshall into nested `Vec<Vec<Option<u64>>>` plus the flatten,
//!   exactly what `CostMatrix::from_graph` used to do on dense graphs;
//! * **build_seq_ms** — [`CostMatrix::from_graph_with_pool`] on a
//!   one-thread pool: the new flat dense-Dijkstra kernel, no parallelism;
//! * **build_par_ms** — the same on the shared global pool (all cores);
//! * **problem_build_ms** — a full `WorkloadSpec::paper` generate;
//! * **SRA / GRA / AGRA** solve times, with GRA and AGRA run twice
//!   (serial and pool-parallel fitness) and their schemes, costs and
//!   fingerprints asserted bitwise-identical — the determinism contract.
//!
//! The budget block claims the build speedup (legacy over parallel) at
//! the largest site count clears `--budget-speedup` (default 3.0; the CI
//! smoke run passes a lenient floor since it uses tiny instances on
//! shared runners).

use drp_algo::{detect_changed_objects, Agra, AgraConfig, Gra, GraConfig, Sra};
use drp_bench::report::{Budget, Fields, Report};
use drp_core::pool::WorkerPool;
use drp_core::{Problem, ReplicationAlgorithm, ReplicationScheme};
use drp_net::{shortest, topology, CostMatrix};
use drp_workload::{PatternChange, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Everything downstream of instance generation is seeded from here.
const SEED: u64 = 0x5ca1e;

struct Args {
    out_path: String,
    sites: Vec<usize>,
    objects: usize,
    pop: usize,
    gens: usize,
    budget_speedup: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        out_path: "BENCH_scale.json".to_string(),
        sites: vec![100, 300, 1000],
        objects: 60,
        pop: 16,
        gens: 8,
        budget_speedup: 3.0,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--sites" => {
                args.sites = value("--sites")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--sites takes integers"))
                    .collect();
            }
            "--objects" => args.objects = value("--objects").parse().expect("--objects"),
            "--pop" => args.pop = value("--pop").parse().expect("--pop"),
            "--gens" => args.gens = value("--gens").parse().expect("--gens"),
            "--budget-speedup" => {
                args.budget_speedup = value("--budget-speedup").parse().expect("--budget-speedup");
            }
            other if !other.starts_with("--") => args.out_path = other.to_string(),
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(
        !args.sites.is_empty(),
        "--sites must name at least one size"
    );
    args
}

/// Best-of-`reps` wall clock of `f` in milliseconds, returning the last
/// result (every rep must produce the same value — these are all
/// deterministic builds).
fn timed_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::MAX;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        let value = f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        result = Some(value);
    }
    (best, result.expect("at least one rep"))
}

/// The pre-pool dense build path: Floyd–Warshall into nested option rows,
/// then the flatten `CostMatrix::from_graph` used to perform.
fn legacy_dense_build(graph: &drp_net::Graph) -> Vec<u64> {
    let table = shortest::floyd_warshall(graph);
    let m = graph.num_sites();
    let mut costs = Vec::with_capacity(m * m);
    for row in &table {
        for entry in row {
            costs.push(entry.expect("complete topologies are connected"));
        }
    }
    costs
}

/// FNV-1a over a scheme's replica bits: a stable cross-run fingerprint.
fn fingerprint(problem: &Problem, scheme: &ReplicationScheme) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for i in problem.sites() {
        for k in problem.objects() {
            hash ^= u64::from(scheme.holds(i, k));
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

struct Sample {
    sites: usize,
    build_legacy_ms: f64,
    build_seq_ms: f64,
    build_par_ms: f64,
    problem_build_ms: f64,
    sra_ms: f64,
    gra_serial_ms: f64,
    gra_parallel_ms: f64,
    agra_serial_ms: f64,
    agra_parallel_ms: f64,
    gra_fingerprint: u64,
    gra_cost: u64,
    parity: bool,
}

fn bench_size(m: usize, objects: usize, pop: usize, gens: usize) -> Sample {
    // Dense-kernel territory: the paper's complete topologies.
    let graph = topology::complete_uniform(m, 1, 10, &mut StdRng::seed_from_u64(SEED))
        .expect("complete topology generates");
    let reps = if m >= 500 { 1 } else { 3 };

    let (build_legacy_ms, legacy) = timed_ms(reps, || legacy_dense_build(&graph));
    let single = WorkerPool::new(1);
    let (build_seq_ms, seq) = timed_ms(reps, || {
        CostMatrix::from_graph_with_pool(&graph, &single).expect("connected")
    });
    let (build_par_ms, par) = timed_ms(reps, || {
        CostMatrix::from_graph_with_pool(&graph, WorkerPool::global()).expect("connected")
    });
    let builds_agree = seq == par && (0..m).all(|i| legacy[i * m..(i + 1) * m] == *par.row(i));
    assert!(builds_agree, "all three build paths must agree bit for bit");

    let (problem_build_ms, problem) = timed_ms(1, || {
        WorkloadSpec::paper(m, objects, 5.0, 15.0)
            .generate(&mut StdRng::seed_from_u64(SEED))
            .expect("paper instance generates")
    });

    let (sra_ms, sra_scheme) = timed_ms(1, || {
        Sra::new()
            .solve(&problem, &mut StdRng::seed_from_u64(SEED))
            .expect("SRA solves")
    });
    sra_scheme.validate(&problem).expect("SRA scheme is valid");

    let gra_config = |parallel: bool| GraConfig {
        population_size: pop,
        generations: gens,
        parallel_fitness: parallel,
        ..GraConfig::default()
    };
    let (gra_serial_ms, gra_serial) = timed_ms(1, || {
        Gra::with_config(gra_config(false))
            .solve_detailed(&problem, &mut StdRng::seed_from_u64(SEED))
            .expect("GRA solves")
    });
    let (gra_parallel_ms, gra_parallel) = timed_ms(1, || {
        Gra::with_config(gra_config(true))
            .solve_detailed(&problem, &mut StdRng::seed_from_u64(SEED))
            .expect("GRA solves")
    });
    let gra_parity = gra_serial.scheme == gra_parallel.scheme
        && gra_serial.fitness == gra_parallel.fitness
        && problem.total_cost(&gra_serial.scheme) == problem.total_cost(&gra_parallel.scheme);

    // AGRA: shift the pattern, adapt serially and in parallel.
    let change = PatternChange {
        change_percent: 250.0,
        objects_percent: 20.0,
        read_share: 0.7,
    };
    let shift = change
        .apply(&problem, &mut StdRng::seed_from_u64(SEED ^ 1))
        .expect("pattern change applies");
    let changed = detect_changed_objects(&problem, &shift.problem, 50.0);
    let population: Vec<_> = gra_serial
        .outcome
        .final_population
        .iter()
        .map(|(c, _)| c.clone())
        .collect();
    let agra_config = |parallel: bool| AgraConfig {
        generations: 12,
        gra: GraConfig {
            parallel_fitness: parallel,
            ..GraConfig::default()
        },
        ..AgraConfig::default()
    };
    let (agra_serial_ms, agra_serial) = timed_ms(1, || {
        Agra::with_config(agra_config(false))
            .adapt(
                &shift.problem,
                &gra_serial.scheme,
                &population,
                &changed,
                &mut StdRng::seed_from_u64(SEED ^ 2),
            )
            .expect("AGRA adapts")
    });
    let (agra_parallel_ms, agra_parallel) = timed_ms(1, || {
        Agra::with_config(agra_config(true))
            .adapt(
                &shift.problem,
                &gra_serial.scheme,
                &population,
                &changed,
                &mut StdRng::seed_from_u64(SEED ^ 2),
            )
            .expect("AGRA adapts")
    });
    let agra_parity = agra_serial.scheme == agra_parallel.scheme
        && agra_serial.fitness == agra_parallel.fitness
        && fingerprint(&shift.problem, &agra_serial.scheme)
            == fingerprint(&shift.problem, &agra_parallel.scheme);

    Sample {
        sites: m,
        build_legacy_ms,
        build_seq_ms,
        build_par_ms,
        problem_build_ms,
        sra_ms,
        gra_serial_ms,
        gra_parallel_ms,
        agra_serial_ms,
        agra_parallel_ms,
        gra_fingerprint: fingerprint(&problem, &gra_serial.scheme),
        gra_cost: problem.total_cost(&gra_serial.scheme),
        parity: builds_agree && gra_parity && agra_parity,
    }
}

fn main() {
    let args = parse_args();
    let samples: Vec<Sample> = args
        .sites
        .iter()
        .map(|&m| bench_size(m, args.objects, args.pop, args.gens))
        .collect();

    let last = samples.last().expect("at least one sample");
    let speedup_at_largest = last.build_legacy_ms / last.build_par_ms;
    // The serial columns are always one thread, the parallel columns run
    // on `pool_threads`, so every sample carries a 1-thread and an
    // N-thread reading of the same work; `thread_fields` records which N
    // that actually was.
    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ms")
            .int("objects", args.objects as u64)
            .int("population", args.pop as u64)
            .int("generations", args.gens as u64),
    );
    let mut report = Report::new(
        "scale",
        config,
        Budget::at_least(
            "build_speedup_at_largest_m",
            args.budget_speedup,
            speedup_at_largest,
        ),
    );
    for s in &samples {
        report.sample(
            Fields::new()
                .int("sites", s.sites as u64)
                .float("build_legacy_ms", s.build_legacy_ms, 2)
                .float("build_seq_ms", s.build_seq_ms, 2)
                .float("build_par_ms", s.build_par_ms, 2)
                .float("build_speedup", s.build_legacy_ms / s.build_par_ms, 2)
                .float("problem_build_ms", s.problem_build_ms, 2)
                .float("sra_ms", s.sra_ms, 2)
                .float("gra_serial_ms", s.gra_serial_ms, 2)
                .float("gra_parallel_ms", s.gra_parallel_ms, 2)
                .float("gra_thread_speedup", s.gra_serial_ms / s.gra_parallel_ms, 2)
                .float("agra_serial_ms", s.agra_serial_ms, 2)
                .float("agra_parallel_ms", s.agra_parallel_ms, 2)
                .int("gra_cost", s.gra_cost)
                .text("gra_fingerprint", &format!("{:016x}", s.gra_fingerprint))
                .flag("parity", s.parity),
        );
    }
    report.write(&args.out_path);
}
