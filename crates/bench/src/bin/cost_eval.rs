//! Machine-readable cost-evaluation timings: `cargo run --release -p
//! drp-bench --bin cost_eval [out.json]` writes `BENCH_cost_eval.json`.
//!
//! For each paper-style instance size it reports nanoseconds per
//! evaluation for the three paths the criterion benches compare
//! interactively:
//!
//! * **full** — `Problem::total_cost`, the rescan-everything baseline;
//! * **incremental** — one `CostEvaluator` flip (an `apply_add`/`undo`
//!   pair timed and halved), the evaluator's O(M) delta path;
//! * **serial/parallel population** — `evaluate_population` over a
//!   GA-generation-sized batch, per chromosome.
//!
//! The artifact uses the shared [`drp_bench::report`] shape so
//! EXPERIMENTS.md tooling can diff runs.

use drp_algo::{encode_scheme, evaluate_population, Sra};
use drp_bench::report::{Budget, Fields, Report};
use drp_bench::{instance, rng};
use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, SiteId};
use drp_ga::{ops, BitString};
use std::time::Instant;

/// Chromosomes per timed population pass — a typical GRA generation.
const POPULATION: usize = 32;

/// Times `f`, calibrating the iteration count to ~20ms of wall clock.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = (warm.elapsed().as_nanos() as u64).max(1);
    let iters = (20_000_000 / once).clamp(1, 2_000_000) as u32;
    let timed = Instant::now();
    for _ in 0..iters {
        f();
    }
    timed.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn feasible_add(problem: &Problem, scheme: &ReplicationScheme) -> Option<(SiteId, ObjectId)> {
    problem
        .sites()
        .flat_map(|i| problem.objects().map(move |k| (i, k)))
        .find(|&(i, k)| {
            !scheme.holds(i, k) && problem.object_size(k) <= scheme.free_capacity(problem, i)
        })
}

struct Row {
    sites: usize,
    objects: usize,
    full_eval_ns: f64,
    incremental_flip_ns: f64,
    serial_population_ns_per_eval: f64,
    parallel_population_ns_per_eval: f64,
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = instance(sites, objects, 5.0);
    let mut r = rng();
    let scheme = Sra::new().solve(&problem, &mut r).unwrap();

    let full_eval_ns = measure(|| {
        std::hint::black_box(problem.total_cost(&scheme));
    });

    let (site, object) = feasible_add(&problem, &scheme)
        .expect("paper instances leave room for at least one extra replica");
    let mut eval = CostEvaluator::new(&problem, scheme.clone());
    let incremental_flip_ns = measure(|| {
        eval.apply_add(site, object).unwrap();
        eval.undo().unwrap();
        std::hint::black_box(eval.total());
    }) / 2.0;

    let seed_bits = encode_scheme(&problem, &scheme);
    let mut population: Vec<(BitString, f64)> = (0..POPULATION)
        .map(|_| {
            let mut chromosome = seed_bits.clone();
            ops::bit_flip_mutation(&mut chromosome, 0.02, &mut r);
            (chromosome, 0.0)
        })
        .collect();
    // Reach the repair fixed point so every timed pass scores identical bits.
    evaluate_population(&problem, &mut population, false);

    let serial = measure(|| {
        evaluate_population(&problem, &mut population, false);
        std::hint::black_box(population[0].1);
    });
    let parallel = measure(|| {
        evaluate_population(&problem, &mut population, true);
        std::hint::black_box(population[0].1);
    });

    Row {
        sites,
        objects,
        full_eval_ns,
        incremental_flip_ns,
        serial_population_ns_per_eval: serial / POPULATION as f64,
        parallel_population_ns_per_eval: parallel / POPULATION as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cost_eval.json".to_string());

    let rows: Vec<Row> = [(20, 50), (50, 100), (100, 200)]
        .into_iter()
        .map(|(m, n)| bench_size(m, n))
        .collect();

    // Parallel-vs-serial is bounded by the cores the host grants; record
    // it so a ~1.0 ratio on a single-core runner reads as expected.
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let config = Fields::new()
        .text("unit", "ns_per_eval")
        .int("population", POPULATION as u64)
        .int("available_parallelism", threads as u64);
    // The evaluator's O(M) flip must beat the full O(M²N) rescan on every
    // size — the claim the incremental design rests on.
    let min_speedup = rows
        .iter()
        .map(|r| r.full_eval_ns / r.incremental_flip_ns)
        .fold(f64::MAX, f64::min);
    let mut report = Report::new(
        "cost_eval",
        config,
        Budget::at_least("min_speedup_incremental_vs_full", 1.0, min_speedup),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .float("full_eval_ns", row.full_eval_ns, 1)
                .float("incremental_flip_ns", row.incremental_flip_ns, 1)
                .float(
                    "serial_population_ns_per_eval",
                    row.serial_population_ns_per_eval,
                    1,
                )
                .float(
                    "parallel_population_ns_per_eval",
                    row.parallel_population_ns_per_eval,
                    1,
                )
                .float(
                    "speedup_incremental_vs_full",
                    row.full_eval_ns / row.incremental_flip_ns,
                    2,
                )
                .float(
                    "speedup_parallel_vs_serial",
                    row.serial_population_ns_per_eval / row.parallel_population_ns_per_eval,
                    2,
                ),
        );
    }
    report.write(&out_path);
}
