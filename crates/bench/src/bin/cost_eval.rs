//! Machine-readable cost-evaluation timings: `cargo run --release -p
//! drp-bench --bin cost_eval [out.json]` writes `BENCH_cost_eval.json`.
//!
//! For each paper-style instance size it reports nanoseconds per
//! evaluation for the paths the criterion benches compare interactively:
//!
//! * **full** — `Problem::total_cost`, the rescan-everything baseline;
//! * **incremental** — one `CostEvaluator` flip (an `apply_add`/`undo`
//!   pair timed and halved), the evaluator's O(M) delta path;
//! * **wide serial population** — `evaluate_population_pooled` on an
//!   explicit one-thread pool with the u64-only scratch: the pre-mirror
//!   code path, the ratchet's serial baseline;
//! * **narrow serial population** — the same one-thread pool with the
//!   u32 SoA mirror, isolating the kernel win from threading;
//! * **parallel population** — the narrow path on the shared global
//!   pool (`DRP_THREADS` sized), the primary configuration.
//!
//! Serial and parallel runs score the *same* chromosomes and the sample
//! carries a `parity` flag asserting their fitness vectors matched
//! bitwise — the determinism contract of the coarse-grained fan-out.
//!
//! The artifact uses the shared [`drp_bench::report`] shape; the
//! `ratchet` bin diffs it against the committed reference.

use drp_algo::{encode_scheme, evaluate_population_pooled, ScratchPool, Sra};
use drp_bench::report::{Budget, Fields, Report};
use drp_bench::{instance, rng};
use drp_core::pool::WorkerPool;
use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, SiteId};
use drp_ga::{ops, BitString};
use std::time::Instant;

/// Chromosomes per timed population pass — a typical GRA generation.
const POPULATION: usize = 32;

/// Times `f`, calibrating the iteration count to ~20ms of wall clock.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = (warm.elapsed().as_nanos() as u64).max(1);
    let iters = (20_000_000 / once).clamp(1, 2_000_000) as u32;
    let timed = Instant::now();
    for _ in 0..iters {
        f();
    }
    timed.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn feasible_add(problem: &Problem, scheme: &ReplicationScheme) -> Option<(SiteId, ObjectId)> {
    problem
        .sites()
        .flat_map(|i| problem.objects().map(move |k| (i, k)))
        .find(|&(i, k)| {
            !scheme.holds(i, k) && problem.object_size(k) <= scheme.free_capacity(problem, i)
        })
}

struct Row {
    sites: usize,
    objects: usize,
    full_eval_ns: f64,
    incremental_flip_ns: f64,
    wide_serial_ns_per_eval: f64,
    narrow_serial_ns_per_eval: f64,
    parallel_ns_per_eval: f64,
    parity: bool,
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = instance(sites, objects, 5.0);
    let mut r = rng();
    let scheme = Sra::new().solve(&problem, &mut r).unwrap();

    let full_eval_ns = measure(|| {
        std::hint::black_box(problem.total_cost(&scheme));
    });

    let (site, object) = feasible_add(&problem, &scheme)
        .expect("paper instances leave room for at least one extra replica");
    let mut eval = CostEvaluator::new(&problem, scheme.clone());
    let incremental_flip_ns = measure(|| {
        eval.apply_add(site, object).unwrap();
        eval.undo().unwrap();
        std::hint::black_box(eval.total());
    }) / 2.0;

    let seed_bits = encode_scheme(&problem, &scheme);
    // A fixed expected flip count (not a fixed rate): on large instances a
    // 2% rate scatters hundreds of random replicas, the fitness goes
    // negative and the reset rule collapses every chromosome to
    // primary-only — which short-circuits to the precomputed V′ and times
    // nothing. ~64 flips keeps the population in the multi-replica regime
    // the kernels exist for.
    let rate = (64.0 / seed_bits.len() as f64).min(0.02);
    let mut population: Vec<(BitString, f64)> = (0..POPULATION)
        .map(|_| {
            let mut chromosome = seed_bits.clone();
            ops::bit_flip_mutation(&mut chromosome, rate, &mut r);
            (chromosome, 0.0)
        })
        .collect();

    let serial_pool = WorkerPool::new(1);
    let global_pool = WorkerPool::global();
    let wide_scratch = ScratchPool::wide(&problem);
    let narrow_scratch = ScratchPool::new(&problem);

    // Reach the repair fixed point so every timed pass scores identical bits.
    evaluate_population_pooled(&problem, &mut population, &narrow_scratch, &serial_pool);

    let wide = measure(|| {
        evaluate_population_pooled(&problem, &mut population, &wide_scratch, &serial_pool);
        std::hint::black_box(population[0].1);
    });
    let wide_fitness: Vec<f64> = population.iter().map(|(_, f)| *f).collect();
    let narrow = measure(|| {
        evaluate_population_pooled(&problem, &mut population, &narrow_scratch, &serial_pool);
        std::hint::black_box(population[0].1);
    });
    let narrow_fitness: Vec<f64> = population.iter().map(|(_, f)| *f).collect();
    let parallel = measure(|| {
        evaluate_population_pooled(&problem, &mut population, &narrow_scratch, global_pool);
        std::hint::black_box(population[0].1);
    });
    let parallel_fitness: Vec<f64> = population.iter().map(|(_, f)| *f).collect();

    // Bitwise: the narrow kernels and the fan-out must not move a single
    // fitness bit relative to the wide one-thread walk.
    let parity = wide_fitness == narrow_fitness && wide_fitness == parallel_fitness;

    Row {
        sites,
        objects,
        full_eval_ns,
        incremental_flip_ns,
        wide_serial_ns_per_eval: wide / POPULATION as f64,
        narrow_serial_ns_per_eval: narrow / POPULATION as f64,
        parallel_ns_per_eval: parallel / POPULATION as f64,
        parity,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cost_eval.json".to_string());

    let rows: Vec<Row> = [(20, 50), (50, 100), (100, 200), (300, 100)]
        .into_iter()
        .map(|(m, n)| bench_size(m, n))
        .collect();

    // Parallel-vs-serial is bounded by the cores the host grants; record
    // what the pool actually used so a flat ratio on a one-core runner
    // reads as expected rather than as a regression.
    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ns_per_eval")
            .int("population", POPULATION as u64),
    );
    // The headline claim of the raw-speed pass: the shipped configuration
    // (narrow kernels + arena + pool) beats the old wide serial walk at
    // the largest site count.
    let headline = rows
        .last()
        .map(|r| r.wide_serial_ns_per_eval / r.parallel_ns_per_eval)
        .unwrap_or(0.0);
    let mut report = Report::new(
        "cost_eval",
        config,
        Budget::at_least("speedup_parallel_vs_serial_at_largest_m", 1.5, headline),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .float("full_eval_ns", row.full_eval_ns, 1)
                .float("incremental_flip_ns", row.incremental_flip_ns, 1)
                .float(
                    "serial_population_ns_per_eval",
                    row.wide_serial_ns_per_eval,
                    1,
                )
                .float(
                    "narrow_population_ns_per_eval",
                    row.narrow_serial_ns_per_eval,
                    1,
                )
                .float(
                    "parallel_population_ns_per_eval",
                    row.parallel_ns_per_eval,
                    1,
                )
                .float(
                    "speedup_incremental_vs_full",
                    row.full_eval_ns / row.incremental_flip_ns,
                    2,
                )
                .float(
                    "speedup_kernel_vs_wide",
                    row.wide_serial_ns_per_eval / row.narrow_serial_ns_per_eval,
                    2,
                )
                .float(
                    "speedup_parallel_vs_serial",
                    row.wide_serial_ns_per_eval / row.parallel_ns_per_eval,
                    2,
                )
                .flag("parity", row.parity),
        );
    }
    report.write(&out_path);
}
