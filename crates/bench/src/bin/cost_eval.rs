//! Machine-readable cost-evaluation timings: `cargo run --release -p
//! drp-bench --bin cost_eval [out.json]` writes `BENCH_cost_eval.json`.
//!
//! For each paper-style instance size it reports nanoseconds per
//! evaluation for the three paths the criterion benches compare
//! interactively:
//!
//! * **full** — `Problem::total_cost`, the rescan-everything baseline;
//! * **incremental** — one `CostEvaluator` flip (an `apply_add`/`undo`
//!   pair timed and halved), the evaluator's O(M) delta path;
//! * **serial/parallel population** — `evaluate_population` over a
//!   GA-generation-sized batch, per chromosome.
//!
//! The JSON is hand-rolled (no serialization dependency) and stable in
//! shape so EXPERIMENTS.md tooling can diff runs.

use drp_algo::{encode_scheme, evaluate_population, Sra};
use drp_bench::{instance, rng};
use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationAlgorithm, ReplicationScheme, SiteId};
use drp_ga::{ops, BitString};
use std::fmt::Write as _;
use std::time::Instant;

/// Chromosomes per timed population pass — a typical GRA generation.
const POPULATION: usize = 32;

/// Times `f`, calibrating the iteration count to ~20ms of wall clock.
fn measure<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = (warm.elapsed().as_nanos() as u64).max(1);
    let iters = (20_000_000 / once).clamp(1, 2_000_000) as u32;
    let timed = Instant::now();
    for _ in 0..iters {
        f();
    }
    timed.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn feasible_add(problem: &Problem, scheme: &ReplicationScheme) -> Option<(SiteId, ObjectId)> {
    problem
        .sites()
        .flat_map(|i| problem.objects().map(move |k| (i, k)))
        .find(|&(i, k)| {
            !scheme.holds(i, k) && problem.object_size(k) <= scheme.free_capacity(problem, i)
        })
}

struct Row {
    sites: usize,
    objects: usize,
    full_eval_ns: f64,
    incremental_flip_ns: f64,
    serial_population_ns_per_eval: f64,
    parallel_population_ns_per_eval: f64,
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = instance(sites, objects, 5.0);
    let mut r = rng();
    let scheme = Sra::new().solve(&problem, &mut r).unwrap();

    let full_eval_ns = measure(|| {
        std::hint::black_box(problem.total_cost(&scheme));
    });

    let (site, object) = feasible_add(&problem, &scheme)
        .expect("paper instances leave room for at least one extra replica");
    let mut eval = CostEvaluator::new(&problem, scheme.clone());
    let incremental_flip_ns = measure(|| {
        eval.apply_add(site, object).unwrap();
        eval.undo().unwrap();
        std::hint::black_box(eval.total());
    }) / 2.0;

    let seed_bits = encode_scheme(&problem, &scheme);
    let mut population: Vec<(BitString, f64)> = (0..POPULATION)
        .map(|_| {
            let mut chromosome = seed_bits.clone();
            ops::bit_flip_mutation(&mut chromosome, 0.02, &mut r);
            (chromosome, 0.0)
        })
        .collect();
    // Reach the repair fixed point so every timed pass scores identical bits.
    evaluate_population(&problem, &mut population, false);

    let serial = measure(|| {
        evaluate_population(&problem, &mut population, false);
        std::hint::black_box(population[0].1);
    });
    let parallel = measure(|| {
        evaluate_population(&problem, &mut population, true);
        std::hint::black_box(population[0].1);
    });

    Row {
        sites,
        objects,
        full_eval_ns,
        incremental_flip_ns,
        serial_population_ns_per_eval: serial / POPULATION as f64,
        parallel_population_ns_per_eval: parallel / POPULATION as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cost_eval.json".to_string());

    let rows: Vec<Row> = [(20, 50), (50, 100), (100, 200)]
        .into_iter()
        .map(|(m, n)| bench_size(m, n))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"cost_eval\",");
    let _ = writeln!(json, "  \"unit\": \"ns_per_eval\",");
    let _ = writeln!(json, "  \"population\": {POPULATION},");
    // Parallel-vs-serial is bounded by the cores the host grants; record
    // it so a ~1.0 ratio on a single-core runner reads as expected.
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(json, "  \"available_parallelism\": {threads},");
    json.push_str("  \"instances\": [\n");
    for (idx, row) in rows.iter().enumerate() {
        let speedup_incremental = row.full_eval_ns / row.incremental_flip_ns;
        let speedup_parallel =
            row.serial_population_ns_per_eval / row.parallel_population_ns_per_eval;
        let _ = write!(
            json,
            "    {{\"sites\": {}, \"objects\": {}, \"full_eval_ns\": {:.1}, \
             \"incremental_flip_ns\": {:.1}, \"serial_population_ns_per_eval\": {:.1}, \
             \"parallel_population_ns_per_eval\": {:.1}, \
             \"speedup_incremental_vs_full\": {:.2}, \
             \"speedup_parallel_vs_serial\": {:.2}}}",
            row.sites,
            row.objects,
            row.full_eval_ns,
            row.incremental_flip_ns,
            row.serial_population_ns_per_eval,
            row.parallel_population_ns_per_eval,
            speedup_incremental,
            speedup_parallel,
        );
        json.push_str(if idx + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
    print!("{json}");
}
