//! Machine-readable telemetry-overhead check: `cargo run --release -p
//! drp-bench --bin telemetry [out.json]` writes `BENCH_telemetry.json`.
//!
//! The observability layer promises to be free when nobody listens. This
//! bin prices that promise on the `cost_eval` workload — the evaluator
//! flip loop every solver hammers — by timing three variants:
//!
//! * **baseline** — the bare `apply_add`/`undo` flip pair, no telemetry
//!   calls at all;
//! * **noop** — the same pair wrapped in a [`NoopRecorder`] span plus a
//!   counter bump, i.e. instrumented code with recording disarmed (the
//!   generic [`telemetry::span`] monomorphises this away);
//! * **noop_dyn** — the disarmed pair through `&dyn Recorder`, the
//!   dispatch the solvers' `Arc<dyn Recorder>` defaults use — kept for
//!   transparency; real spans there bracket whole sweeps/generations, so
//!   the per-span virtual load vanishes at that granularity;
//! * **armed** — the same pair recording into an [`InMemoryRecorder`],
//!   the price a `--trace-out` run actually pays.
//!
//! The headline figure is the budget block's `max_noop_overhead_percent`:
//! the worst noop-vs-baseline gap across instance sizes, expected to stay
//! within the 2% budget. A GRA end-to-end comparison (default noop engine
//! vs recorder armed) rides along in the config block for context.

use drp_algo::{Gra, GraConfig};
use drp_bench::report::{Budget, Fields, Report};
use drp_bench::{instance, rng};
use drp_core::telemetry::{self, InMemoryRecorder, NoopRecorder, Recorder};
use drp_core::{CostEvaluator, ObjectId, Problem, ReplicationScheme, SiteId};
use std::sync::Arc;
use std::time::Instant;

/// The noop path must cost no more than this over the bare loop.
const BUDGET_PERCENT: f64 = 2.0;

/// Timed passes per variant; the minimum is kept. A flip pair costs a few
/// hundred nanoseconds while the effect under test (two devirtualised
/// `enabled()` calls) costs single digits, so one pass drowns in scheduler
/// noise — the best-of-N floor is the stable estimator. The variants are
/// timed *interleaved* (one pass of each per round, see [`measure_all`]):
/// timing each variant's passes back to back lets a CPU-frequency or
/// steal-time shift between the phases masquerade as recorder overhead
/// (or as a negative overhead), which on virtualized single-core hosts
/// dwarfs the single-digit-nanosecond effect under test.
const PASSES: usize = 25;

/// Times `f` once, calibrating the iteration count to ~5ms of wall clock.
fn measure_once<F: FnMut()>(mut f: F) -> f64 {
    let warm = Instant::now();
    f();
    let once = (warm.elapsed().as_nanos() as u64).max(1);
    let iters = (5_000_000 / once).clamp(1, 5_000_000) as u32;
    let timed = Instant::now();
    for _ in 0..iters {
        f();
    }
    timed.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Best-of-[`PASSES`] timing of every variant, round-robin: each round
/// times one pass of each closure, so all minima come from the same few
/// hundred milliseconds and host-speed drift cancels out of the
/// differential.
fn measure_all<const K: usize>(variants: &mut [&mut dyn FnMut(); K]) -> [f64; K] {
    // One discarded round first: the very first timed closure otherwise
    // pays the cold instruction cache and page-fault bill for everyone.
    for f in variants.iter_mut() {
        measure_once(&mut **f);
    }
    let mut best = [f64::MAX; K];
    for _ in 0..PASSES {
        for (slot, f) in best.iter_mut().zip(variants.iter_mut()) {
            *slot = slot.min(measure_once(&mut **f));
        }
    }
    best
}

fn feasible_add(problem: &Problem, scheme: &ReplicationScheme) -> Option<(SiteId, ObjectId)> {
    problem
        .sites()
        .flat_map(|i| problem.objects().map(move |k| (i, k)))
        .find(|&(i, k)| {
            !scheme.holds(i, k) && problem.object_size(k) <= scheme.free_capacity(problem, i)
        })
}

/// One flip pair, optionally wrapped the way the solvers wrap it.
fn flip_pair(eval: &mut CostEvaluator<'_>, site: SiteId, object: ObjectId) {
    eval.apply_add(site, object).unwrap();
    eval.undo().unwrap();
    std::hint::black_box(eval.total());
}

struct Row {
    sites: usize,
    objects: usize,
    baseline_ns: f64,
    noop_ns: f64,
    noop_dyn_ns: f64,
    armed_ns: f64,
}

impl Row {
    fn overhead_percent(&self, variant_ns: f64) -> f64 {
        100.0 * (variant_ns - self.baseline_ns) / self.baseline_ns
    }
}

fn bench_size(sites: usize, objects: usize) -> Row {
    let problem = instance(sites, objects, 5.0);
    let scheme = ReplicationScheme::primary_only(&problem);
    let (site, object) = feasible_add(&problem, &scheme)
        .expect("paper instances leave room for at least one extra replica");

    let noop = NoopRecorder;
    let noop_dyn: &dyn Recorder = &NoopRecorder;
    let armed = InMemoryRecorder::new();
    let mut eval_baseline = CostEvaluator::new(&problem, scheme.clone());
    let mut eval_noop = CostEvaluator::new(&problem, scheme.clone());
    let mut eval_noop_dyn = CostEvaluator::new(&problem, scheme.clone());
    let mut eval_armed = CostEvaluator::new(&problem, scheme);

    let [baseline_ns, noop_ns, noop_dyn_ns, armed_ns] = measure_all(&mut [
        &mut || flip_pair(&mut eval_baseline, site, object),
        &mut || {
            let _span = telemetry::span(&noop, "bench.flip");
            noop.add_counter("bench.flips", 1);
            flip_pair(&mut eval_noop, site, object);
        },
        &mut || {
            let _span = telemetry::span(noop_dyn, "bench.flip");
            noop_dyn.add_counter("bench.flips", 1);
            flip_pair(&mut eval_noop_dyn, site, object);
        },
        &mut || {
            let _span = telemetry::span(&armed, "bench.flip");
            armed.add_counter("bench.flips", 1);
            flip_pair(&mut eval_armed, site, object);
        },
    ]);

    Row {
        sites,
        objects,
        baseline_ns,
        noop_ns,
        noop_dyn_ns,
        armed_ns,
    }
}

/// Wall clock of one seeded GRA solve with the given recorder wiring.
fn gra_run_ns(problem: &Problem, recorder: Option<Arc<dyn Recorder>>) -> f64 {
    let config = GraConfig {
        population_size: 16,
        generations: 20,
        ..GraConfig::default()
    };
    let mut gra = Gra::with_config(config);
    if let Some(rec) = recorder {
        gra = gra.with_recorder(rec);
    }
    let started = Instant::now();
    let run = gra.solve_detailed(problem, &mut rng()).unwrap();
    std::hint::black_box(run.fitness);
    started.elapsed().as_nanos() as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_telemetry.json".to_string());

    let rows: Vec<Row> = [(20, 50), (50, 100), (100, 200)]
        .into_iter()
        .map(|(m, n)| bench_size(m, n))
        .collect();
    let max_noop = rows
        .iter()
        .map(|r| r.overhead_percent(r.noop_ns))
        .fold(f64::MIN, f64::max);

    // End-to-end GRA with and without a live recorder, interleaved
    // best-of-3 for the same drift-cancellation reason as the flip pairs.
    let gra_problem = instance(30, 60, 5.0);
    let (mut gra_noop_ns, mut gra_armed_ns) = (f64::MAX, f64::MAX);
    for _ in 0..3 {
        gra_noop_ns = gra_noop_ns.min(gra_run_ns(&gra_problem, None));
        gra_armed_ns = gra_armed_ns.min(gra_run_ns(
            &gra_problem,
            Some(Arc::new(InMemoryRecorder::new()) as Arc<dyn Recorder>),
        ));
    }

    let config = drp_bench::thread_fields(
        Fields::new()
            .text("unit", "ns_per_flip_pair")
            .int("passes", PASSES as u64)
            .float("gra_noop_ms", gra_noop_ns / 1e6, 1)
            .float("gra_armed_ms", gra_armed_ns / 1e6, 1)
            .float(
                "gra_armed_overhead_percent",
                100.0 * (gra_armed_ns - gra_noop_ns) / gra_noop_ns,
                2,
            ),
    );
    let mut report = Report::new(
        "telemetry",
        config,
        Budget::at_most("max_noop_overhead_percent", BUDGET_PERCENT, max_noop),
    );
    for row in &rows {
        report.sample(
            Fields::new()
                .int("sites", row.sites as u64)
                .int("objects", row.objects as u64)
                .float("baseline_ns", row.baseline_ns, 1)
                .float("noop_ns", row.noop_ns, 1)
                .float("noop_dyn_ns", row.noop_dyn_ns, 1)
                .float("armed_ns", row.armed_ns, 1)
                .float(
                    "noop_overhead_percent",
                    row.overhead_percent(row.noop_ns),
                    2,
                )
                .float(
                    "noop_dyn_overhead_percent",
                    row.overhead_percent(row.noop_dyn_ns),
                    2,
                )
                .float(
                    "armed_overhead_percent",
                    row.overhead_percent(row.armed_ns),
                    2,
                ),
        );
    }
    report.write(&out_path);
}
