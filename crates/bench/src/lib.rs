//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches quantify the paper's timing claims on today's hardware:
//!
//! * `cost_model` — full vs incremental NTC evaluation (the ablation behind
//!   the "incremental cost maintenance" design decision in DESIGN.md);
//! * `scaling` — SRA and GRA wall-clock versus the number of sites and
//!   objects (Figures 2(a)/2(b));
//! * `adaptive` — AGRA variants versus warm/fresh GRA (Figure 4(d));
//! * `ga_ops` — the genetic operators and selection schemes in isolation.
//!
//! The machine-readable `BENCH_*.json` bins (`cost_eval`, `faults`,
//! `telemetry`, `scale`, `adapt`) all emit the shared [`report`] shape.

pub mod ratchet;
pub mod report;

use drp_core::Problem;
use drp_workload::WorkloadSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic paper-style instance for benchmarking.
pub fn instance(sites: usize, objects: usize, update_percent: f64) -> Problem {
    WorkloadSpec::paper(sites, objects, update_percent, 15.0)
        .generate(&mut StdRng::seed_from_u64(0xbe4c))
        .expect("benchmark instance generates")
}

/// A deterministic rng for solver runs.
pub fn rng() -> StdRng {
    StdRng::seed_from_u64(0xfeed)
}

/// Appends the threading fields every artifact's config records: the
/// cores the host offers, the pool size actually used (`DRP_THREADS`
/// wins over auto-detection), and the raw `DRP_THREADS` value. The
/// ratchet treats all three as environment, not benchmark identity.
#[must_use]
pub fn thread_fields(fields: report::Fields) -> report::Fields {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let drp_threads = std::env::var("DRP_THREADS").unwrap_or_else(|_| "unset".to_string());
    fields
        .int("available_parallelism", available as u64)
        .int(
            "pool_threads",
            drp_core::pool::WorkerPool::global().threads() as u64,
        )
        .text("drp_threads", &drp_threads)
}
