//! The performance ratchet: compares freshly measured `BENCH_*.json`
//! artifacts against the committed references and fails on regression.
//!
//! The committed artifacts at the repository root *are* the references —
//! there is no second copy to keep in sync. A bench run writes fresh
//! artifacts somewhere else (CI uses a scratch directory), then
//! `cargo run -p drp-bench --bin ratchet -- --refs . --current <dir>`
//! walks every `BENCH_*.json` in the reference directory and checks, per
//! sample and per metric:
//!
//! * **timings** (`*_ms`, `*_ns`, `ns_per_*`…) may grow only within a
//!   noise multiplier (shared runners jitter; the default tolerates
//!   1.75× plus one unit of absolute grace for sub-millisecond rows);
//! * **ratios** (`*speedup*`, `*per_sec*`…) may shrink only within the
//!   mirrored margin;
//! * **percent gauges** (`*savings*` up, `*overhead*` down) move within
//!   an absolute ±5-point band;
//! * **determinism flags** (`parity`, `within_budget`, `*_ok`) that were
//!   `true` in the reference must stay `true`;
//! * **fingerprints and costs** are identity: they key the sample, so a
//!   drifted fingerprint surfaces as a *missing sample* — the loudest
//!   possible failure, because it means determinism broke.
//!
//! Intentional changes (new config, faster-but-different algorithm) are
//! recorded by re-blessing: `--bless` copies the current artifacts over
//! the references, and the diff shows up in review like any other code
//! change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A parsed JSON value. Numbers keep their source text so identity
/// comparisons are exact even for floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num { text: String, value: f64 },
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// Parses a JSON document (the subset the [`report`](crate::report)
/// emitter produces, which is a strict subset of standard JSON).
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let value: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    Ok(Value::Num {
        text: text.to_string(),
        value,
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'/') => out.push('/'),
                    other => return Err(format!("unsupported escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// How a field participates in the ratchet, decided by its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Wall-clock style: may only grow within the noise multiplier.
    LowerBetter,
    /// Speedup/throughput style: may only shrink within the margin.
    HigherBetter,
    /// Percent gauge where up is good (savings): absolute band.
    HigherBetterAbs,
    /// Percent gauge where down is good (overhead): absolute band.
    LowerBetterAbs,
    /// A `true` in the reference must stay `true`.
    MustStayTrue,
    /// Part of the sample's identity key (config, counts, fingerprints,
    /// costs): exact match through the key, never a tolerance.
    Identity,
}

/// Classifies a field by name. Identity is the safe default: an
/// unrecognized field keys the sample and any drift shows up as a
/// missing sample rather than being silently tolerated.
pub fn classify(key: &str) -> Class {
    let k = key.to_ascii_lowercase();
    if k == "within_budget" || k.contains("parity") || k.ends_with("_ok") || k.ends_with("_valid") {
        return Class::MustStayTrue;
    }
    if k.contains("speedup") || k.contains("per_sec") || k.contains("throughput") {
        return Class::HigherBetter;
    }
    if k.contains("savings") {
        return Class::HigherBetterAbs;
    }
    if k.contains("overhead") || k.contains("slowdown") {
        return Class::LowerBetterAbs;
    }
    if k.ends_with("_ms")
        || k.ends_with("_ns")
        || k.ends_with("_us")
        || k.ends_with("_seconds")
        || k.contains("ns_per")
        || k.contains("_ms_")
        || k.contains("latency")
    {
        return Class::LowerBetter;
    }
    Class::Identity
}

/// Regression tolerances. `slack` scales every band at once (CI smoke
/// runs on shared runners pass `--slack 2` for twice the headroom).
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Timings may reach `reference * (1 + timing_frac) + timing_abs`.
    pub timing_frac: f64,
    /// Absolute grace on timings, in the metric's own unit.
    pub timing_abs: f64,
    /// Ratios may fall to `reference * (1 - ratio_frac)`.
    pub ratio_frac: f64,
    /// Percent gauges move at most this many absolute points the wrong way.
    pub percent_abs: f64,
}

impl Tolerance {
    /// The default bands scaled by `slack`.
    pub fn with_slack(slack: f64) -> Self {
        Self {
            timing_frac: 0.75 * slack,
            timing_abs: 1.0 * slack,
            ratio_frac: (0.35 * slack).min(0.95),
            percent_abs: 5.0 * slack,
        }
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Self::with_slack(1.0)
    }
}

/// One detected regression, already rendered for the console.
pub type Violation = String;

/// Config fields that describe the host, not the benchmark.
const ENV_FIELDS: &[&str] = &["available_parallelism", "pool_threads", "drp_threads"];

fn identity_key(sample: &Value) -> String {
    let Value::Obj(fields) = sample else {
        return String::from("<non-object sample>");
    };
    let mut key = String::new();
    for (name, value) in fields {
        if classify(name) != Class::Identity {
            continue;
        }
        let rendered = match value {
            Value::Num { text, .. } => text.clone(),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            other => format!("{other:?}"),
        };
        let _ = write!(key, "{name}={rendered} ");
    }
    key.trim_end().to_string()
}

fn check_metric(
    context: &str,
    name: &str,
    reference: &Value,
    current: &Value,
    tol: &Tolerance,
    violations: &mut Vec<Violation>,
) {
    match classify(name) {
        Class::Identity => {} // covered by the sample key
        Class::MustStayTrue => {
            if reference == &Value::Bool(true) && current != &Value::Bool(true) {
                violations.push(format!("{context}: flag {name} regressed from true"));
            }
        }
        class => {
            let (Some(r), Some(c)) = (reference.as_f64(), current.as_f64()) else {
                violations.push(format!(
                    "{context}: metric {name} is not numeric on both sides"
                ));
                return;
            };
            let ok = match class {
                Class::LowerBetter => c <= r * (1.0 + tol.timing_frac) + tol.timing_abs,
                Class::HigherBetter => c >= r * (1.0 - tol.ratio_frac),
                Class::HigherBetterAbs => c >= r - tol.percent_abs,
                Class::LowerBetterAbs => c <= r + tol.percent_abs,
                Class::Identity | Class::MustStayTrue => unreachable!(),
            };
            if !ok {
                violations.push(format!(
                    "{context}: {name} regressed (reference {r}, current {c})"
                ));
            }
        }
    }
}

/// Compares one current report against its reference. Returns every
/// violation found (empty = ratchet holds).
pub fn compare_reports(reference: &Value, current: &Value, tol: &Tolerance) -> Vec<Violation> {
    let mut violations = Vec::new();

    let bench = match reference.get("bench") {
        Some(Value::Str(s)) => s.clone(),
        _ => String::from("<unnamed>"),
    };
    if reference.get("bench") != current.get("bench") {
        violations.push(format!("{bench}: bench name differs between the artifacts"));
        return violations;
    }

    // Identity config fields must match exactly: a changed configuration
    // invalidates every timing comparison, so it requires a bless, not a
    // tolerance. Fields describing the *machine* rather than the benchmark
    // (core counts, `DRP_THREADS`) are exempt — the whole point of the
    // ratchet is to compare runs across hosts — and metric-named config
    // fields (some bins summarize timings there) get the same tolerance
    // bands as sample metrics.
    if let (Some(Value::Obj(ref_config)), Some(cur_config)) =
        (reference.get("config"), current.get("config"))
    {
        let mut config_changed = false;
        for (name, ref_value) in ref_config {
            if ENV_FIELDS.contains(&name.as_str()) {
                continue;
            }
            let Some(cur_value) = cur_config.get(name) else {
                config_changed = true;
                continue;
            };
            if classify(name) == Class::Identity {
                config_changed |= ref_value != cur_value;
            } else {
                let context = format!("{bench} (config)");
                check_metric(&context, name, ref_value, cur_value, tol, &mut violations);
            }
        }
        if config_changed {
            violations.push(format!(
                "{bench}: config changed — re-run with --bless if intentional"
            ));
            return violations;
        }
    }

    // Samples are keyed by their identity fields; each reference sample
    // must find a current partner, and the partner's metrics must hold.
    let empty = Vec::new();
    let ref_samples = match reference.get("samples") {
        Some(Value::Arr(items)) => items,
        _ => &empty,
    };
    let cur_samples = match current.get("samples") {
        Some(Value::Arr(items)) => items,
        _ => &empty,
    };
    for ref_sample in ref_samples {
        let key = identity_key(ref_sample);
        let Some(cur_sample) = cur_samples.iter().find(|s| identity_key(s) == key) else {
            violations.push(format!(
                "{bench}: no current sample matches [{key}] — identity drift \
                 (changed fingerprint/cost/config) or dropped coverage"
            ));
            continue;
        };
        let Value::Obj(fields) = ref_sample else {
            continue;
        };
        for (name, ref_value) in fields {
            let context = format!("{bench} [{key}]");
            match cur_sample.get(name) {
                Some(cur_value) => {
                    check_metric(&context, name, ref_value, cur_value, tol, &mut violations);
                }
                None => violations.push(format!("{context}: metric {name} disappeared")),
            }
        }
    }

    // The budget claim must keep holding under the same terms.
    if let (Some(r), Some(c)) = (reference.get("budget"), current.get("budget")) {
        if r.get("metric") != c.get("metric") || r.get("limit") != c.get("limit") {
            violations.push(format!(
                "{bench}: budget terms changed — re-run with --bless if intentional"
            ));
        } else if r.get("within_budget") == Some(&Value::Bool(true))
            && c.get("within_budget") != Some(&Value::Bool(true))
        {
            violations.push(format!("{bench}: budget claim regressed to failing"));
        }
    }

    violations
}

/// The result of ratcheting one directory pair.
#[derive(Debug)]
pub struct Outcome {
    /// Reference files checked (`BENCH_*.json` names).
    pub checked: Vec<String>,
    /// All violations across all files.
    pub violations: Vec<Violation>,
}

/// Lists the `BENCH_*.json` artifacts in `dir`, sorted by name.
///
/// # Errors
///
/// Returns the I/O error message if the directory cannot be read.
pub fn discover(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Ratchets every reference artifact in `refs` against its same-named
/// counterpart in `current`. A missing counterpart is a violation: the
/// bench that produced the reference stopped running.
///
/// # Errors
///
/// Returns an error on unreadable directories or unparseable JSON —
/// infrastructure problems, distinct from regressions.
pub fn run(refs: &Path, current: &Path, tol: &Tolerance) -> Result<Outcome, String> {
    let mut outcome = Outcome {
        checked: Vec::new(),
        violations: Vec::new(),
    };
    for ref_path in discover(refs)? {
        let name = ref_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("discover yields utf-8 names")
            .to_string();
        let ref_text = std::fs::read_to_string(&ref_path)
            .map_err(|e| format!("reading {}: {e}", ref_path.display()))?;
        let reference = parse(&ref_text).map_err(|e| format!("{name} (reference): {e}"))?;

        let cur_path = current.join(&name);
        if !cur_path.exists() {
            outcome.violations.push(format!(
                "{name}: no current artifact at {}",
                cur_path.display()
            ));
            outcome.checked.push(name);
            continue;
        }
        let cur_text = std::fs::read_to_string(&cur_path)
            .map_err(|e| format!("reading {}: {e}", cur_path.display()))?;
        let cur = parse(&cur_text).map_err(|e| format!("{name} (current): {e}"))?;

        outcome
            .violations
            .extend(compare_reports(&reference, &cur, tol));
        outcome.checked.push(name);
    }
    Ok(outcome)
}

/// Blesses the current artifacts: copies every `BENCH_*.json` in
/// `current` over the same name in `refs`. Returns the copied names.
///
/// # Errors
///
/// Returns the I/O error message on an unreadable source or unwritable
/// destination.
pub fn bless(refs: &Path, current: &Path) -> Result<Vec<String>, String> {
    let mut copied = Vec::new();
    for cur_path in discover(current)? {
        let name = cur_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("discover yields utf-8 names")
            .to_string();
        std::fs::copy(&cur_path, refs.join(&name)).map_err(|e| format!("blessing {name}: {e}"))?;
        copied.push(name);
    }
    Ok(copied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Budget, Fields, Report};

    fn demo_report(gra_ms: f64, speedup: f64, parity: bool) -> Value {
        let mut report = Report::new(
            "demo",
            Fields::new().text("unit", "ms").int("population", 16),
            Budget::at_least("speedup", 1.5, speedup),
        );
        report.sample(
            Fields::new()
                .int("sites", 100)
                .float("gra_serial_ms", gra_ms, 2)
                .float("speedup_parallel_vs_serial", speedup, 2)
                .text("gra_fingerprint", "abc123")
                .flag("parity", parity),
        );
        parse(&report.render()).expect("report renders valid JSON")
    }

    #[test]
    fn parser_round_trips_the_report_shape() {
        let value = demo_report(10.0, 2.0, true);
        assert_eq!(value.get("bench"), Some(&Value::Str("demo".into())));
        let Some(Value::Arr(samples)) = value.get("samples") else {
            panic!("samples must parse as an array");
        };
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].get("sites").and_then(Value::as_f64), Some(100.0));
        assert_eq!(
            value.get("budget").and_then(|b| b.get("within_budget")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn classification_covers_the_artifact_vocabulary() {
        assert_eq!(classify("gra_serial_ms"), Class::LowerBetter);
        assert_eq!(classify("full_eval_ns"), Class::LowerBetter);
        assert_eq!(
            classify("serial_population_ns_per_eval"),
            Class::LowerBetter
        );
        assert_eq!(classify("speedup_parallel_vs_serial"), Class::HigherBetter);
        assert_eq!(classify("savings_percent"), Class::HigherBetterAbs);
        assert_eq!(classify("overhead_percent"), Class::LowerBetterAbs);
        assert_eq!(classify("parity"), Class::MustStayTrue);
        assert_eq!(classify("within_budget"), Class::MustStayTrue);
        assert_eq!(classify("sites"), Class::Identity);
        assert_eq!(classify("gra_fingerprint"), Class::Identity);
        assert_eq!(classify("gra_cost"), Class::Identity);
    }

    #[test]
    fn identical_reports_pass() {
        let reference = demo_report(10.0, 2.0, true);
        let violations = compare_reports(&reference, &reference, &Tolerance::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn noise_within_tolerance_passes() {
        let reference = demo_report(10.0, 2.0, true);
        let current = demo_report(14.0, 1.7, true); // 1.4× timing, −15% ratio
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn timing_regression_fails() {
        let reference = demo_report(10.0, 2.0, true);
        let current = demo_report(25.0, 2.0, true); // 2.5× > 1.75× + 1.0
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("gra_serial_ms"));
    }

    #[test]
    fn ratio_regression_fails() {
        let reference = demo_report(10.0, 2.0, true);
        let current = demo_report(10.0, 1.2, true); // −40% < −35% band
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(
            violations
                .iter()
                .any(|v| v.contains("speedup_parallel_vs_serial")),
            "{violations:?}"
        );
        // The budget floor (1.5) also trips: actual fell below the limit.
        assert!(
            violations.iter().any(|v| v.contains("budget")),
            "{violations:?}"
        );
    }

    #[test]
    fn parity_flip_fails() {
        let reference = demo_report(10.0, 2.0, true);
        let current = demo_report(10.0, 2.0, false);
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("parity")),
            "{violations:?}"
        );
    }

    #[test]
    fn fingerprint_drift_is_a_missing_sample() {
        let reference = demo_report(10.0, 2.0, true);
        let mut report = Report::new(
            "demo",
            Fields::new().text("unit", "ms").int("population", 16),
            Budget::at_least("speedup", 1.5, 2.0),
        );
        report.sample(
            Fields::new()
                .int("sites", 100)
                .float("gra_serial_ms", 10.0, 2)
                .float("speedup_parallel_vs_serial", 2.0, 2)
                .text("gra_fingerprint", "DIFFERENT")
                .flag("parity", true),
        );
        let current = parse(&report.render()).unwrap();
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("no current sample")),
            "{violations:?}"
        );
    }

    #[test]
    fn config_change_demands_a_bless() {
        let reference = demo_report(10.0, 2.0, true);
        let mut report = Report::new(
            "demo",
            Fields::new().text("unit", "ms").int("population", 32), // changed
            Budget::at_least("speedup", 1.5, 2.0),
        );
        report.sample(Fields::new().int("sites", 100));
        let current = parse(&report.render()).unwrap();
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("--bless")),
            "{violations:?}"
        );
    }

    #[test]
    fn machine_fields_and_config_timings_are_not_identity() {
        let build = |threads: u64, noop_ms: f64| {
            let mut report = Report::new(
                "demo",
                Fields::new()
                    .text("unit", "ms")
                    .int("population", 16)
                    .int("available_parallelism", threads)
                    .int("pool_threads", threads)
                    .text("drp_threads", "unset")
                    .float("gra_noop_ms", noop_ms, 1),
                Budget::at_least("speedup", 1.5, 2.0),
            );
            report.sample(Fields::new().int("sites", 100).flag("parity", true));
            parse(&report.render()).unwrap()
        };
        // Different core counts and noisy config timing: still passes.
        let reference = build(1, 10.0);
        let current = build(8, 12.0);
        let violations = compare_reports(&reference, &current, &Tolerance::default());
        assert!(violations.is_empty(), "{violations:?}");
        // A regressed config timing is caught with the metric bands.
        let slow = build(1, 40.0);
        let violations = compare_reports(&reference, &slow, &Tolerance::default());
        assert!(
            violations.iter().any(|v| v.contains("gra_noop_ms")),
            "{violations:?}"
        );
    }

    #[test]
    fn slack_scales_the_bands() {
        let reference = demo_report(10.0, 2.0, true);
        let current = demo_report(25.0, 2.0, true);
        let strict = compare_reports(&reference, &current, &Tolerance::default());
        assert!(!strict.is_empty());
        let lenient = compare_reports(&reference, &current, &Tolerance::with_slack(2.0));
        assert!(lenient.is_empty(), "{lenient:?}");
    }

    #[test]
    fn directory_run_and_bless_round_trip() {
        let base = std::env::temp_dir().join(format!("drp-ratchet-{}", std::process::id()));
        let refs = base.join("refs");
        let cur = base.join("cur");
        std::fs::create_dir_all(&refs).unwrap();
        std::fs::create_dir_all(&cur).unwrap();

        let write = |dir: &Path, gra_ms: f64| {
            let mut report = Report::new(
                "demo",
                Fields::new().text("unit", "ms"),
                Budget::at_least("speedup", 1.5, 2.0),
            );
            report.sample(
                Fields::new()
                    .int("sites", 10)
                    .float("gra_serial_ms", gra_ms, 2),
            );
            std::fs::write(dir.join("BENCH_demo.json"), report.render()).unwrap();
        };
        write(&refs, 10.0);
        write(&cur, 50.0); // clear regression

        let outcome = run(&refs, &cur, &Tolerance::default()).unwrap();
        assert_eq!(outcome.checked, vec!["BENCH_demo.json"]);
        assert!(!outcome.violations.is_empty());

        // Missing current artifact is itself a violation.
        std::fs::remove_file(cur.join("BENCH_demo.json")).unwrap();
        let missing = run(&refs, &cur, &Tolerance::default()).unwrap();
        assert!(missing.violations[0].contains("no current artifact"));

        // Bless copies current over refs; the ratchet then holds.
        write(&cur, 50.0);
        let copied = bless(&refs, &cur).unwrap();
        assert_eq!(copied, vec!["BENCH_demo.json"]);
        let after = run(&refs, &cur, &Tolerance::default()).unwrap();
        assert!(after.violations.is_empty(), "{:?}", after.violations);

        std::fs::remove_dir_all(&base).ok();
    }
}
