//! Shared JSON emission for the machine-readable `BENCH_*.json` bins.
//!
//! Every benchmark artifact has the same top-level shape, so the
//! EXPERIMENTS.md tooling and the CI asserts read any of them the same
//! way:
//!
//! ```json
//! {
//!   "bench": "<name>",
//!   "config": { "unit": "...", ... },
//!   "samples": [ { ... }, ... ],
//!   "budget": { "metric": "...", "limit": x, "actual": y,
//!               "within_budget": true }
//! }
//! ```
//!
//! The JSON is hand-rolled (no serialization dependency): values are
//! rendered eagerly into JSON fragments, so a [`Fields`] object is just an
//! ordered list of key/fragment pairs and emission is a straight print.

use std::fmt::Write as _;

/// An ordered JSON object under construction; keys keep insertion order.
#[derive(Debug, Clone, Default)]
pub struct Fields(Vec<(String, String)>);

impl Fields {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an integer field.
    #[must_use]
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.0.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a float field rendered with `decimals` fraction digits.
    #[must_use]
    pub fn float(mut self, key: &str, value: f64, decimals: usize) -> Self {
        self.0
            .push((key.to_string(), format!("{value:.decimals$}")));
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn flag(mut self, key: &str, value: bool) -> Self {
        self.0.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a string field.
    #[must_use]
    pub fn text(mut self, key: &str, value: &str) -> Self {
        self.0.push((key.to_string(), quoted(value)));
        self
    }

    /// Renders as a single-line `{"k": v, ...}` object.
    fn render_inline(&self) -> String {
        let mut out = String::from("{");
        for (index, (key, value)) in self.0.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {value}", quoted(key));
        }
        out.push('}');
        out
    }
}

fn quoted(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// The pass/fail claim a benchmark artifact carries, with the direction of
/// the comparison baked in at construction.
#[derive(Debug, Clone)]
pub struct Budget {
    metric: String,
    limit: f64,
    actual: f64,
    within_budget: bool,
}

impl Budget {
    /// A ceiling: within budget iff `actual <= limit` (e.g. an overhead
    /// percentage).
    pub fn at_most(metric: &str, limit: f64, actual: f64) -> Self {
        Self {
            metric: metric.to_string(),
            limit,
            actual,
            within_budget: actual <= limit,
        }
    }

    /// A floor: within budget iff `actual >= limit` (e.g. a speedup ratio).
    pub fn at_least(metric: &str, limit: f64, actual: f64) -> Self {
        Self {
            metric: metric.to_string(),
            limit,
            actual,
            within_budget: actual >= limit,
        }
    }

    /// Whether the claim held.
    pub fn within(&self) -> bool {
        self.within_budget
    }
}

/// A complete benchmark artifact.
#[derive(Debug, Clone)]
pub struct Report {
    name: String,
    config: Fields,
    samples: Vec<Fields>,
    budget: Budget,
}

impl Report {
    /// A report with its fixed run configuration and budget claim.
    pub fn new(name: &str, config: Fields, budget: Budget) -> Self {
        Self {
            name: name.to_string(),
            config,
            samples: Vec::new(),
            budget,
        }
    }

    /// Appends one measured sample (typically one instance size).
    pub fn sample(&mut self, fields: Fields) {
        self.samples.push(fields);
    }

    /// Renders the artifact as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": {},", quoted(&self.name));
        json.push_str("  \"config\": {\n");
        for (index, (key, value)) in self.config.0.iter().enumerate() {
            let comma = if index + 1 < self.config.0.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(json, "    {}: {value}{comma}", quoted(key));
        }
        json.push_str("  },\n");
        json.push_str("  \"samples\": [\n");
        for (index, sample) in self.samples.iter().enumerate() {
            let comma = if index + 1 < self.samples.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(json, "    {}{comma}", sample.render_inline());
        }
        json.push_str("  ],\n");
        let _ = writeln!(
            json,
            "  \"budget\": {{\"metric\": {}, \"limit\": {}, \"actual\": {:.4}, \
             \"within_budget\": {}}}",
            quoted(&self.budget.metric),
            self.budget.limit,
            self.budget.actual,
            self.budget.within_budget,
        );
        json.push_str("}\n");
        json
    }

    /// Writes the artifact to `path` and echoes it to stdout, the contract
    /// every `BENCH_*` bin follows.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &str) {
        let json = self.render();
        std::fs::write(path, &json).expect("write benchmark json");
        println!("wrote {path}");
        print!("{json}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_shared_shape() {
        let mut report = Report::new(
            "demo",
            Fields::new().text("unit", "ns").int("reps", 3),
            Budget::at_most("overhead_percent", 2.0, 1.25),
        );
        report.sample(Fields::new().int("sites", 10).float("ns", 12.5, 1));
        report.sample(Fields::new().int("sites", 20).flag("ok", true));
        let json = report.render();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"unit\": \"ns\""));
        assert!(json.contains("{\"sites\": 10, \"ns\": 12.5}"));
        assert!(json.contains("{\"sites\": 20, \"ok\": true}"));
        assert!(json.contains("\"within_budget\": true"));
    }

    #[test]
    fn budget_directions() {
        assert!(Budget::at_most("x", 2.0, 2.0).within());
        assert!(!Budget::at_most("x", 2.0, 2.1).within());
        assert!(Budget::at_least("x", 3.0, 3.0).within());
        assert!(!Budget::at_least("x", 3.0, 2.9).within());
    }

    #[test]
    fn strings_are_escaped() {
        let fields = Fields::new().text("note", "a \"b\"\\c");
        assert_eq!(fields.render_inline(), r#"{"note": "a \"b\"\\c"}"#);
    }
}
